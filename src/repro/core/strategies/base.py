"""The balancing-strategy interface and its shared machinery.

A :class:`BalanceStrategy` answers one question: given the current SD
ownership and the busy-time counters of the measurement window, which
SDs should move where?  Every strategy shares the paper's measurement
preamble (eqs. 8-10: node power from busy time, expected shares, load
imbalance, integer targets) and the transfer mechanics of
:mod:`repro.core.transfer`; they differ only in *how* the residual
imbalance is routed:

* ``tree`` — the paper's Algorithm 1 (dependency-tree subtree flows);
* ``diffusion`` — first-order neighbor-pairwise diffusive exchange;
* ``greedy`` — repeated max->min donor/receiver settlement;
* ``repartition`` — re-run the multilevel partitioner and remap labels.

All strategies preserve the balancing invariants — every SD stays
owned by a valid node, SDs are moved (never created or relabeled
wholesale), and the step is a no-op below the trigger threshold — and
are deterministic: identical inputs give identical plans, which is
what keeps the simulated schedules bit-identical across sweep workers.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...mesh.decomposition import Decomposition
from ...mesh.subdomain import SubdomainGrid
from ..power import compute_power, expected_sds, imbalance_ratio, integer_targets
from ..transfer import TransferPlan, select_transfers

__all__ = ["BalanceResult", "BalanceEvent", "BalanceStrategy",
           "is_uniform_work", "evacuate_assignments"]


def is_uniform_work(work_per_sd: Optional[Sequence[float]]) -> bool:
    """Whether per-SD work weights are effectively uniform.

    ``None`` (no weights), an empty sequence, a scalar, and a
    single-entry vector are all uniform by definition; otherwise every
    entry must equal the first.  Uniform work lets the balancer snap
    expected shares to integer SD targets (largest-remainder
    apportionment), which is what stops Algorithm 1 oscillating between
    configurations that are equally close to the fractional ideal.
    """
    if work_per_sd is None:
        return True
    work = np.atleast_1d(np.asarray(work_per_sd, dtype=np.float64))
    if work.size <= 1:
        return True
    return bool(np.allclose(work, work.flat[0]))


def evacuate_assignments(sd_grid: SubdomainGrid, parts: np.ndarray,
                         active: np.ndarray,
                         sd_work: Optional[np.ndarray] = None
                         ) -> Tuple[np.ndarray, List[TransferPlan]]:
    """Reassign every SD owned by an inactive node to an active one.

    The mechanical half of failure recovery, shared by every balancing
    strategy (and used directly by the solver when balancing is
    disabled — evacuation is a *correctness* requirement, rebalancing a
    performance choice).  Stranded SDs are absorbed frontier-first:
    repeatedly hand the stranded SD that touches the least-loaded
    active region to that region's owner (ties by node id, then SD id),
    so the dead node's area is split between its live neighbors instead
    of dumped wholesale on one of them.  If no stranded SD touches any
    active region (every incumbent died at once), the lowest-id
    stranded SD bootstraps onto the least-loaded active node and the
    frontier sweep continues from there.

    Returns ``(new_parts, plans)``; ``parts`` itself is not modified.
    Deterministic by construction.
    """
    parts = np.array(parts, dtype=np.int64, copy=True)
    active = np.asarray(active, dtype=bool)
    if sd_work is None:
        sd_work = np.ones(len(parts))
    else:
        sd_work = np.asarray(sd_work, dtype=np.float64)
    if not active.any():
        raise ValueError("evacuation needs at least one active node")
    load = np.zeros(len(active))
    owned_by_active = active[parts]
    np.add.at(load, parts[owned_by_active], sd_work[owned_by_active])
    active_ids = [int(n) for n in np.nonzero(active)[0]]
    plans: List[TransferPlan] = []
    while True:
        stranded = np.nonzero(~active[parts])[0]
        if len(stranded) == 0:
            break
        best = None  # (dst load, dst id, sd id)
        for sd in stranded:
            for nb in sd_grid.face_neighbors(int(sd)):
                dst = int(parts[nb])
                if active[dst]:
                    key = (float(load[dst]), dst, int(sd))
                    if best is None or key < best:
                        best = key
        if best is None:
            dst = min(active_ids, key=lambda n: (float(load[n]), n))
            best = (float(load[dst]), dst, int(stranded[0]))
        _, dst, sd = best
        plans.append(TransferPlan(int(parts[sd]), dst, 1, [sd]))
        parts[sd] = dst
        load[dst] += sd_work[sd]
    return parts, plans


@dataclass(frozen=True, eq=False)
class BalanceResult:
    """Diagnostics of one balancing step (immutable).

    ``imbalance_before``/``imbalance_after`` are eq. (9) per node —
    ``expected - load`` in work units — evaluated at decision time and
    after the planned transfers; ``imbalance_after`` is derived in
    ``__post_init__`` from the ownership delta (the expected shares are
    fixed within a step, so only the realized loads change).

    ``imbalance_ratio_before``/``imbalance_ratio_after`` are the scalar
    max/mean indicators the telemetry records: the measured busy-time
    ratio at decision time, and the ratio *predicted* for the new
    ownership from the measured node powers.
    """

    strategy: str
    parts_before: np.ndarray
    parts_after: np.ndarray
    imbalance_before: np.ndarray
    plans: Tuple[TransferPlan, ...]
    triggered: bool
    imbalance_ratio_before: float
    imbalance_ratio_after: float
    #: ``True`` when this step reacted to a topology change — it
    #: evacuated a failed node's SDs and/or seeded a fresh joiner —
    #: rather than to ordinary load drift
    recovery: bool = False
    sd_work: InitVar[Optional[np.ndarray]] = None
    imbalance_after: np.ndarray = field(init=False)

    def __post_init__(self, sd_work: Optional[np.ndarray]) -> None:
        def _freeze(name: str, arr, dtype) -> np.ndarray:
            arr = np.array(arr, dtype=dtype, copy=True)
            arr.flags.writeable = False
            object.__setattr__(self, name, arr)
            return arr

        before = _freeze("parts_before", self.parts_before, np.int64)
        after = _freeze("parts_after", self.parts_after, np.int64)
        imb = _freeze("imbalance_before", self.imbalance_before, np.float64)
        object.__setattr__(self, "plans", tuple(self.plans))
        if len(before) != len(after):
            raise ValueError(
                f"ownership length changed: {len(before)} -> {len(after)}")
        work = (np.ones(len(before)) if sd_work is None
                else np.asarray(sd_work, dtype=np.float64))
        delta = np.zeros(len(imb))
        moved = np.nonzero(before != after)[0]
        np.add.at(delta, after[moved], work[moved])
        np.add.at(delta, before[moved], -work[moved])
        _freeze("imbalance_after", imb - delta, np.float64)

    @property
    def sds_moved(self) -> int:
        """Total SDs that changed owner."""
        return int(np.count_nonzero(self.parts_before != self.parts_after))

    def __repr__(self) -> str:
        # stable (value-only, no addresses) so logs diff cleanly
        return (f"BalanceResult(strategy={self.strategy!r}, "
                f"triggered={self.triggered}, sds_moved={self.sds_moved}, "
                f"imbalance_ratio={self.imbalance_ratio_before:.4f}"
                f"->{self.imbalance_ratio_after:.4f})")


@dataclass(frozen=True)
class BalanceEvent:
    """One balancer invocation as the run telemetry records it.

    Emitted every time the policy fires (including no-op decisions, so
    the migration-cost accounting shows *when* the balancer looked, not
    just when it moved).  ``imbalance_before`` is the measured max/mean
    busy-time ratio at decision time; ``imbalance_after`` the ratio
    predicted for the new ownership from the measured node powers.
    """

    step: int
    strategy: str
    sds_moved: int
    migration_bytes: int
    imbalance_before: float
    imbalance_after: float
    #: recovery-tagged: the invocation handled a topology change
    #: (evacuation after a failure, or absorption of a joiner) — kept
    #: defaulted so pre-churn event dicts still round-trip
    recovery: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"step": self.step, "strategy": self.strategy,
                "sds_moved": self.sds_moved,
                "migration_bytes": self.migration_bytes,
                "imbalance_before": self.imbalance_before,
                "imbalance_after": self.imbalance_after,
                "recovery": self.recovery}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BalanceEvent":
        return cls(**d)


class _StepContext:
    """Everything the preamble measured, handed to ``_rebalance``.

    ``active`` is ``None`` for the fixed-membership contract, or a
    boolean mask over node ids; inactive nodes own no SDs by the time
    ``_rebalance`` runs (the shared preamble evacuated them), have
    ``expected``/``residual`` pinned to zero, and must never receive
    SDs.
    """

    __slots__ = ("parts", "decomp", "num_nodes", "busy", "sd_work",
                 "node_load", "power", "expected", "imbalance", "residual",
                 "mean_sd_work", "half_sd", "uniform", "active")

    def __init__(self, **kw: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])

    def active_ids(self) -> np.ndarray:
        """Ids of the nodes allowed to own SDs, ascending."""
        if self.active is None:
            return np.arange(self.num_nodes)
        return np.nonzero(self.active)[0]


class BalanceStrategy:
    """Base class: the measurement preamble all strategies share.

    Parameters
    ----------
    sd_grid:
        SD geometry (adjacency and transfer selection).
    trigger_threshold:
        Minimum ``max |target - current|`` (in average-SD work units)
        required to act; below it the step is a no-op.
    preserve_connectivity:
        Forwarded to the transfer policy.
    """

    #: Registry name, set by :func:`repro.core.strategies.registry
    #: .register_strategy`.
    name: str = "?"

    def __init__(self, sd_grid: SubdomainGrid,
                 trigger_threshold: float = 1.0,
                 preserve_connectivity: bool = True) -> None:
        self.sd_grid = sd_grid
        self.trigger_threshold = trigger_threshold
        self.preserve_connectivity = preserve_connectivity

    # -- the shared driver -------------------------------------------------
    def balance_step(self, parts: Sequence[int], num_nodes: int,
                     busy_times: Sequence[float],
                     work_per_sd: Optional[Sequence[float]] = None,
                     active: Optional[Sequence[bool]] = None) -> BalanceResult:
        """Measure (eqs. 8-10), check the trigger, delegate to the strategy.

        Parameters
        ----------
        parts:
            Current SD ownership (node id per SD).
        num_nodes:
            Cluster size.
        busy_times:
            Per-node busy time since the last counter reset.
        work_per_sd:
            Optional per-SD work weights; when provided, node power and
            shares are computed in work units so heterogeneous SDs
            balance by actual load.
        active:
            Optional per-node liveness mask (elastic clusters, DESIGN.md
            substitution 4).  Inactive nodes are evacuated first (every
            strategy shares that mechanical step — SDs *must* leave a
            dead node), get a zero expected share, and never receive
            SDs; active nodes that own nothing (fresh joiners) are
            seeded with one frontier SD so adjacency-based routing can
            reach them.  ``None`` — and a mask with every node active
            and owning SDs — reproduce the fixed-membership behavior
            bit for bit.  A step that evacuated or seeded is tagged
            ``recovery=True`` and fires regardless of the threshold.
        """
        parts = np.asarray(parts, dtype=np.int64)
        Decomposition(self.sd_grid, parts, num_nodes)  # validate ownership
        busy = np.asarray(busy_times, dtype=np.float64)
        if len(busy) != num_nodes:
            raise ValueError(f"need {num_nodes} busy times, got {len(busy)}")
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if len(active) != num_nodes:
                raise ValueError(
                    f"need {num_nodes} active flags, got {len(active)}")
            if not active.any():
                raise ValueError("need at least one active node")

        uniform = is_uniform_work(work_per_sd)
        if work_per_sd is None:
            sd_work = np.ones(self.sd_grid.num_subdomains)
        else:
            sd_work = np.asarray(work_per_sd, dtype=np.float64)
            if len(sd_work) != self.sd_grid.num_subdomains:
                raise ValueError("work_per_sd must have one entry per SD")

        # recovery preamble: a dead node's SDs must leave *now*
        pre_plans: List[TransferPlan] = []
        work_parts = parts
        if active is not None and not active[parts].all():
            work_parts, pre_plans = evacuate_assignments(
                self.sd_grid, parts, active, sd_work)

        # Algorithm 1 lines 2-12: loads, power, expected, imbalance
        node_load = np.zeros(num_nodes)
        np.add.at(node_load, work_parts, sd_work)
        total = float(node_load.sum())
        mean_sd_work = total / max(1, self.sd_grid.num_subdomains)
        if active is None:
            power = compute_power(node_load, busy)
            expected = expected_sds(total, power)
            ratio_before = imbalance_ratio(busy)
        else:
            # eq. (8) relates busy time to the load that *produced* it:
            # measure power from the pre-evacuation ownership, and over
            # the live cluster only — a dead node's stale busy time
            # must not pollute the fallback power a measurement-less
            # joiner is assigned
            load_measured = np.zeros(num_nodes)
            np.add.at(load_measured, parts, sd_work)
            power = np.ones(num_nodes)
            power[active] = compute_power(load_measured[active],
                                          busy[active])
            expected = np.zeros(num_nodes)
            expected[active] = expected_sds(total, power[active])
            ratio_before = imbalance_ratio(busy[active])
        imbalance = expected - node_load

        # joiners: an active node owning nothing is unreachable by
        # frontier transfers — seed it with one well-placed SD
        if active is not None:
            if work_parts is parts:
                work_parts = parts.copy()
            seed_plans = self._seed_empty_nodes(
                work_parts, node_load, expected, sd_work, 0.5 * mean_sd_work)
            if seed_plans:
                pre_plans.extend(seed_plans)
                imbalance = expected - node_load  # loads changed in place

        if uniform:
            # integer targets (in SDs scaled by the common work factor),
            # apportioned over the nodes allowed to own SDs so the sum
            # is conserved even when the active set shrinks or grows
            scale = mean_sd_work if mean_sd_work > 0 else 1.0
            residual = np.zeros(num_nodes)
            if active is None:
                targets = integer_targets(expected / scale) * scale
                residual[:] = targets - node_load
            else:
                targets = integer_targets(expected[active] / scale) * scale
                residual[active] = targets - node_load[active]
        else:
            residual = imbalance.copy()
            if active is not None:
                residual[~active] = 0.0

        recovery = bool(pre_plans)
        threshold = self.trigger_threshold * mean_sd_work
        if not recovery and np.abs(residual).max() < max(threshold, 1e-12):
            return BalanceResult(
                strategy=self.name, parts_before=parts,
                parts_after=parts.copy(), imbalance_before=imbalance,
                plans=(), triggered=False,
                imbalance_ratio_before=ratio_before,
                imbalance_ratio_after=ratio_before, sd_work=sd_work)

        decomp = Decomposition(self.sd_grid, work_parts, num_nodes)
        ctx = _StepContext(parts=work_parts, decomp=decomp,
                           num_nodes=num_nodes,
                           busy=busy, sd_work=sd_work, node_load=node_load,
                           power=power, expected=expected,
                           imbalance=imbalance, residual=residual,
                           mean_sd_work=mean_sd_work,
                           half_sd=0.5 * mean_sd_work, uniform=uniform,
                           active=active)
        new_parts, plans = self._rebalance(ctx)
        load_after = np.zeros(num_nodes)
        np.add.at(load_after, new_parts, sd_work)
        if active is None:
            ratio_after = imbalance_ratio(load_after / power)
        else:
            ratio_after = imbalance_ratio(
                load_after[active] / power[active])
        return BalanceResult(
            strategy=self.name, parts_before=parts, parts_after=new_parts,
            imbalance_before=imbalance, plans=tuple(pre_plans) + tuple(plans),
            triggered=True, recovery=recovery,
            imbalance_ratio_before=ratio_before,
            imbalance_ratio_after=ratio_after,
            sd_work=sd_work)

    def _seed_empty_nodes(self, parts: np.ndarray, node_load: np.ndarray,
                          expected: np.ndarray, sd_work: np.ndarray,
                          half_sd: float) -> List[TransferPlan]:
        """Give each SD-less active node one SD so transfers can reach it.

        A joiner owns nothing, so it has no frontier and no node
        adjacency — every routing strategy would starve it forever.
        Each deserving node (expected share above half an average SD)
        is seeded with one SD from the currently most-loaded donor: the
        donor SD farthest from the donor's own centroid that keeps the
        donor connected (a corner of its region), ties by SD id.
        ``parts`` and ``node_load`` are updated in place.
        """
        from ..transfer import _donor_stays_connected, _sp_centroid
        plans: List[TransferPlan] = []
        counts = np.bincount(parts, minlength=len(node_load))
        for n in np.nonzero(expected)[0]:
            n = int(n)
            if counts[n] > 0 or expected[n] <= half_sd:
                continue
            donors = [d for d in range(len(counts)) if counts[d] >= 2]
            if not donors:
                break
            donor = max(donors, key=lambda d: (node_load[d], -d))
            centroid = _sp_centroid(self.sd_grid, parts, donor)
            best = None  # (-distance, sd id)
            for sd in np.nonzero(parts == donor)[0]:
                sd = int(sd)
                if not _donor_stays_connected(self.sd_grid, parts, donor, sd):
                    continue
                cx, cy = self.sd_grid.sd_center(sd)
                dist = float(np.hypot(cx - centroid[0], cy - centroid[1]))
                key = (-round(dist, 9), sd)
                if best is None or key < best:
                    best = key
            if best is None:
                continue
            sd = best[1]
            plans.append(TransferPlan(donor, n, 1, [sd]))
            parts[sd] = n
            node_load[donor] -= sd_work[sd]
            node_load[n] += sd_work[sd]
            counts[donor] -= 1
            counts[n] += 1
        return plans

    def _rebalance(self, ctx: _StepContext) -> Tuple[np.ndarray, List[TransferPlan]]:
        """Route the residual imbalance; returns ``(new_parts, plans)``.

        ``ctx.parts`` must not be mutated — strategies work on a copy.
        """
        raise NotImplementedError

    # -- shared movers -----------------------------------------------------
    def _settle(self, parts: np.ndarray, donor: int, receiver: int,
                amount: float, sd_work: np.ndarray,
                half_sd: float) -> List[TransferPlan]:
        """Move ~``amount`` work units of SDs from ``donor`` to ``receiver``.

        SDs move one at a time (re-evaluating the frontier after each)
        so heterogeneous work weights settle as closely as the SD
        granularity allows.  Stops early when the donor/receiver
        frontier is exhausted — the shortfall simply remains as residual
        imbalance and is retried at the next balancing step.
        """
        remaining = amount
        plans: List[TransferPlan] = []
        while remaining > half_sd:
            plan = select_transfers(
                self.sd_grid, parts, donor=donor, receiver=receiver, count=1,
                preserve_donor_connectivity=self.preserve_connectivity)
            if not plan.sds:
                break
            sd = plan.sds[0]
            parts[sd] = receiver
            remaining -= float(sd_work[sd])
            plans.append(plan)
        return plans

    def _greedy_settle(self, parts: np.ndarray, residual: np.ndarray,
                       sd_work: np.ndarray,
                       half_sd: float) -> List[TransferPlan]:
        """Repeated max->min settlement: one SD per move, no tree.

        Each move hands one frontier SD from the most-overloaded donor
        reachable by the most-underloaded receiver (falling back through
        the ranked pairs when geometry offers no shared frontier; when
        *no* surplus/deficit pair touches, one SD is relayed hop-by-hop
        along the node-adjacency path between the extreme pair).
        ``parts`` and ``residual`` are updated in place; terminates when
        every node is within half an average SD of its target or no
        realizable move remains (bounded by a hard move cap so degenerate
        zero-work weights cannot loop).
        """
        plans: List[TransferPlan] = []
        num_nodes = len(residual)
        budget = 4 * len(parts) + 8
        while budget > 0:
            # most surplus first / most deficit first, ties by node id
            order = np.argsort(residual, kind="stable")
            moves: List[TransferPlan] = []
            for r in order[::-1]:
                if residual[r] <= half_sd:
                    break
                for d in order:
                    if residual[d] >= -half_sd:
                        break
                    if d == r:
                        continue
                    plan = select_transfers(
                        self.sd_grid, parts, donor=int(d), receiver=int(r),
                        count=1,
                        preserve_donor_connectivity=self.preserve_connectivity)
                    if plan.sds:
                        moves = [plan]
                        break
                if moves:
                    break
            if not moves:
                moves = self._relay_moves(parts, residual, half_sd, num_nodes)
            if not moves:
                break
            for plan in moves:
                sd = plan.sds[0]
                parts[sd] = plan.receiver
                residual[plan.donor] += sd_work[sd]
                residual[plan.receiver] -= sd_work[sd]
                plans.append(plan)
                budget -= 1
        return plans

    def _relay_moves(self, parts: np.ndarray, residual: np.ndarray,
                     half_sd: float, num_nodes: int) -> List[TransferPlan]:
        """One SD relayed along the adjacency path from the most-
        overloaded to the most-underloaded node.

        Used when no surplus node shares a frontier with any deficit
        node (hot and cold regions separated by near-balanced ones):
        each hop moves one frontier SD to the next node on the BFS
        path, so the intermediate nodes stay net-neutral while one SD's
        worth of load crosses the gap.  Returns ``[]`` when the extreme
        pair is within threshold, disconnected, or geometry blocks a
        hop — the caller treats that as settled.
        """
        donor = int(np.argmin(residual))
        receiver = int(np.argmax(residual))
        if (residual[receiver] <= half_sd or residual[donor] >= -half_sd
                or donor == receiver):
            return []
        nbrs: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
        decomp = Decomposition(self.sd_grid, parts, num_nodes)
        for a, b in decomp.node_adjacency():
            nbrs[a].append(b)
            nbrs[b].append(a)
        # BFS (sorted neighbors: deterministic shortest path)
        prev = {donor: donor}
        queue = [donor]
        while queue and receiver not in prev:
            nxt: List[int] = []
            for n in queue:
                for m in sorted(nbrs[n]):
                    if m not in prev:
                        prev[m] = n
                        nxt.append(m)
            queue = nxt
        if receiver not in prev:
            return []
        path = [receiver]
        while path[-1] != donor:
            path.append(prev[path[-1]])
        path.reverse()
        moves: List[TransferPlan] = []
        staged = parts.copy()
        for a, b in zip(path, path[1:]):
            plan = select_transfers(
                self.sd_grid, staged, donor=a, receiver=b, count=1,
                preserve_donor_connectivity=self.preserve_connectivity)
            if not plan.sds:
                return []
            staged[plan.sds[0]] = b
            moves.append(plan)
        return moves
