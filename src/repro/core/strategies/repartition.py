"""``repartition`` — full multilevel repartition with label remapping.

The from-scratch alternative the partitioning literature calls
"scratch-remap": instead of incrementally routing residual imbalance,
re-run the multilevel partitioner (the repository's METIS substitute)
on the *current* per-SD work weights with target part weights
proportional to the measured node powers, then remap the fresh part
labels onto the old node ids by **maximum overlap** so the relabeling
— which is free — absorbs as much of the new layout as possible and
only genuinely displaced SDs pay migration bytes.

A greedy settlement polish then walks the remainder toward the integer
targets: the partitioner guarantees a balance *tolerance* (±5% per
bisection), while the other strategies settle to within half an
average SD — without the polish a repartition step could leave a
larger spread than the strategies it is compared against.

Deterministic by construction: the partitioner runs with a fixed seed,
the overlap remap breaks ties by node id, and the polish is the same
deterministic mover the greedy strategy uses.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..transfer import TransferPlan
from .base import BalanceStrategy, _StepContext
from .registry import register_strategy

__all__ = ["RepartitionStrategy"]

#: Fixed partitioner seed: the balancing step must be deterministic.
_SEED = 0


def _remap_by_overlap(fresh: np.ndarray, old: np.ndarray, num_nodes: int,
                      weights: np.ndarray) -> np.ndarray:
    """Relabel ``fresh`` part ids onto old node ids by maximum overlap.

    ``weights`` is the per-SD migration cost (DP counts — bytes moved
    is proportional); the greedy assignment repeatedly matches the
    (new label, old node) pair with the largest co-owned weight, ties
    broken by the smaller ids, so the relabeling minimizes migration
    greedily and deterministically.
    """
    overlap = np.zeros((num_nodes, num_nodes))
    np.add.at(overlap, (fresh, old), weights)
    mapping = np.full(num_nodes, -1, dtype=np.int64)
    taken = np.zeros(num_nodes, dtype=bool)
    work = overlap.copy()
    for _ in range(num_nodes):
        flat = int(np.argmax(work))  # ties: lowest (new, old) index pair
        new_label, old_node = divmod(flat, num_nodes)
        if work[new_label, old_node] < 0:
            break
        mapping[new_label] = old_node
        taken[old_node] = True
        work[new_label, :] = -1.0
        work[:, old_node] = -1.0
    leftovers = iter(np.nonzero(~taken)[0])
    for label in range(num_nodes):
        if mapping[label] < 0:
            mapping[label] = next(leftovers)
    return mapping[fresh]


@register_strategy("repartition")
class RepartitionStrategy(BalanceStrategy):
    """Scratch-remap: repartition on current work, remap, polish."""

    def _rebalance(self, ctx: _StepContext) -> Tuple[np.ndarray, List[TransferPlan]]:
        from ...partition.kway import partition_sd_grid
        sd_grid = self.sd_grid
        # with an elastic cluster, partition into the *live* nodes only
        # (k = #active) and work in that compact label space; a dead
        # node must appear in neither the fresh layout nor the remap
        act = ctx.active_ids()
        local_of = np.full(ctx.num_nodes, -1, dtype=np.int64)
        local_of[act] = np.arange(len(act))
        fresh_local = partition_sd_grid(
            sd_grid.sd_nx, sd_grid.sd_ny, len(act), seed=_SEED,
            vwgt=ctx.sd_work, target_weights=ctx.power[act])
        dp_counts = np.array([sd_grid.dp_count(sd)
                              for sd in range(sd_grid.num_subdomains)],
                             dtype=np.float64)
        # ctx.parts is post-evacuation: every owner is active
        old_local = local_of[ctx.parts]
        new_parts = act[_remap_by_overlap(fresh_local, old_local, len(act),
                                          dp_counts)]

        # record the remap movement as per-pair transfer plans
        plans: List[TransferPlan] = []
        moved = np.nonzero(new_parts != ctx.parts)[0]
        by_pair = {}
        for sd in moved:
            by_pair.setdefault(
                (int(ctx.parts[sd]), int(new_parts[sd])), []).append(int(sd))
        for (donor, receiver) in sorted(by_pair):
            sds = by_pair[(donor, receiver)]
            plans.append(TransferPlan(donor, receiver, len(sds), sds))

        # polish: the partitioner balances to a tolerance; settle the
        # remainder to the same half-SD criterion the other strategies use
        load = np.zeros(ctx.num_nodes)
        np.add.at(load, new_parts, ctx.sd_work)
        residual = (ctx.node_load + ctx.residual) - load  # targets - load
        plans.extend(self._greedy_settle(new_parts, residual, ctx.sd_work,
                                         ctx.half_sd))
        return new_parts, plans
