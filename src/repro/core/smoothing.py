"""Smoothed power estimation for noisy busy-time measurements.

On a real machine the busy-time window is polluted by OS jitter,
measurement granularity, and transient interference; balancing on raw
single-window readings makes Algorithm 1 chase noise (migrations cost
real bandwidth).  :class:`SmoothedPowerEstimator` keeps an exponentially
weighted moving average of each node's measured power and exposes a
drop-in ``busy_times``-like view for the balancer: the smoothed power is
converted back to an *effective* busy time so ``LoadBalancer
.balance_step`` needs no changes.

This is the "specific performance counters" direction the paper lists as
future work, made concrete.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .power import compute_power

__all__ = ["SmoothedPowerEstimator"]


class SmoothedPowerEstimator:
    """EWMA filter over per-node power measurements.

    Parameters
    ----------
    num_nodes:
        Cluster size.
    alpha:
        EWMA weight of the newest measurement in ``(0, 1]``; 1.0
        reproduces raw (unsmoothed) behaviour.
    """

    def __init__(self, num_nodes: int, alpha: float = 0.4) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0,1], got {alpha}")
        self.num_nodes = num_nodes
        self.alpha = alpha
        self._power: Optional[np.ndarray] = None
        self.updates = 0

    def update(self, node_loads: Sequence[float],
               busy_times: Sequence[float]) -> np.ndarray:
        """Fold one measurement window in; returns the smoothed power."""
        loads = np.asarray(node_loads, dtype=np.float64)
        busy = np.asarray(busy_times, dtype=np.float64)
        if len(loads) != self.num_nodes or len(busy) != self.num_nodes:
            raise ValueError(
                f"need {self.num_nodes} loads and busy times, got "
                f"{len(loads)}/{len(busy)}")
        raw = compute_power(loads, busy)
        if self._power is None:
            self._power = raw.copy()
        else:
            self._power = self.alpha * raw + (1 - self.alpha) * self._power
        self.updates += 1
        return self._power.copy()

    @property
    def power(self) -> np.ndarray:
        """Current smoothed power (raises before the first update)."""
        if self._power is None:
            raise RuntimeError("no measurements folded in yet")
        return self._power.copy()

    def effective_busy_times(self, node_loads: Sequence[float]) -> np.ndarray:
        """Busy times implied by the smoothed power for the given loads.

        ``LoadBalancer.balance_step`` recovers power as ``load / busy``;
        feeding it ``load / smoothed_power`` therefore makes it balance
        on the smoothed estimate.  Nodes with zero load get a unit busy
        time (their power falls back to the measured mean inside
        ``compute_power`` anyway).
        """
        loads = np.asarray(node_loads, dtype=np.float64)
        power = self.power
        busy = np.where(loads > 0, loads / power, 1.0)
        return busy

    def reset(self) -> None:
        """Forget all history (e.g. after a known reconfiguration)."""
        self._power = None
        self.updates = 0
