"""The paper's primary contribution: SD-level load balancing (Sec. 7).

* :mod:`repro.core.power` — eqs. (8)-(10): node power from busy-time
  counters, expected SD shares, load imbalance.
* :mod:`repro.core.tree` — dependency tree + topological processing order.
* :mod:`repro.core.transfer` — direction-uniform, contiguity-preserving
  SD selection.
* :mod:`repro.core.strategies` — the pluggable balancing strategies
  (``tree`` = Algorithm 1, ``diffusion``, ``greedy``, ``repartition``)
  behind a registry with the ``REPRO_BALANCER`` override.
* :mod:`repro.core.balancer` — the :class:`LoadBalancer` facade.
* :mod:`repro.core.policy` — when-to-balance strategies (stateless).
"""

from .balancer import BalanceResult, LoadBalancer
from .policy import (BalancePolicy, IntervalPolicy, NeverBalance,
                     ThresholdPolicy)
from .power import (compute_power, expected_sds, imbalance_ratio, integer_targets,
                    load_imbalance)
from .smoothing import SmoothedPowerEstimator
from .strategies import (BalanceEvent, BalanceStrategy, is_uniform_work,
                         make_strategy, requested_strategy, strategy_names)
from .transfer import (TransferPlan, apply_transfers,
                       naive_select_transfers, select_transfers)
from .tree import DependencyTree, build_dependency_tree, topological_order

__all__ = [
    "BalanceResult", "LoadBalancer",
    "BalanceEvent", "BalanceStrategy", "is_uniform_work", "make_strategy",
    "requested_strategy", "strategy_names",
    "BalancePolicy", "IntervalPolicy", "NeverBalance", "ThresholdPolicy",
    "compute_power", "expected_sds", "imbalance_ratio", "integer_targets", "load_imbalance",
    "SmoothedPowerEstimator",
    "TransferPlan", "apply_transfers", "naive_select_transfers",
    "select_transfers",
    "DependencyTree", "build_dependency_tree", "topological_order",
]
