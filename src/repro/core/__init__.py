"""The paper's primary contribution: SD-level load balancing (Sec. 7).

* :mod:`repro.core.power` — eqs. (8)-(10): node power from busy-time
  counters, expected SD shares, load imbalance.
* :mod:`repro.core.tree` — dependency tree + topological processing order.
* :mod:`repro.core.transfer` — direction-uniform, contiguity-preserving
  SD selection.
* :mod:`repro.core.balancer` — the Algorithm 1 driver.
* :mod:`repro.core.policy` — when-to-balance strategies.
"""

from .balancer import BalanceResult, LoadBalancer
from .policy import (BalancePolicy, IntervalPolicy, NeverBalance,
                     ThresholdPolicy)
from .power import (compute_power, expected_sds, imbalance_ratio, integer_targets,
                    load_imbalance)
from .smoothing import SmoothedPowerEstimator
from .transfer import (TransferPlan, apply_transfers,
                       naive_select_transfers, select_transfers)
from .tree import DependencyTree, build_dependency_tree, topological_order

__all__ = [
    "BalanceResult", "LoadBalancer",
    "BalancePolicy", "IntervalPolicy", "NeverBalance", "ThresholdPolicy",
    "compute_power", "expected_sds", "imbalance_ratio", "integer_targets", "load_imbalance",
    "SmoothedPowerEstimator",
    "TransferPlan", "apply_transfers", "naive_select_transfers",
    "select_transfers",
    "DependencyTree", "build_dependency_tree", "topological_order",
]
