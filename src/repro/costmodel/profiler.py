"""Offline reuse-distance profiles per (backend, block shape, radius).

Following the PPT/Simian approach, a kernel's memory behaviour is
summarized *offline* — analytically, from the backend's access pattern,
not by tracing the simulated run — as a small **reuse-distance
profile**: how many memory accesses one DP update issues, and at what
stack distances (bytes of unique data touched between successive uses)
those accesses hit.  The hierarchy cost model evaluates a profile
against a :class:`repro.costmodel.hierarchy.MemoryHierarchy` to price
each access at the first cache level large enough to still hold the
reuse window, falling through to DRAM.

Profiles are memoized with ``functools.lru_cache`` keyed on the fully
resolved ``(backend, rows, cols, radius)`` — the same idiom as the
experiment runner's operator cache — so a sweep revisiting one block
shape derives its slowdown once.  All arithmetic is pure, deterministic
float math: profiles (and hence schedules) are bit-reproducible.

Derivations (one multiply-add per touched value, 8-byte float64):

``direct``
    Dense convolution over the ``(2R+1)^2`` stencil window.  Of the
    ``J = (2R+1)^2`` reads per DP, the ``2R+1`` same-row neighbours
    reuse a just-touched contiguous segment (distance ``(2R+1) * 8``
    bytes); the other rows reuse the sliding row window of the padded
    block (distance ``(2R+1) * (cols + 2R) * 8`` bytes).
``fft``
    ``ceil(log2(n))`` butterfly passes over the ``n``-point padded
    block, each touching every point ~5 times (two reads, two writes,
    a twiddle).  Small-stride passes reuse a row-sized working set;
    large-stride passes stride the whole padded array, so half the
    accesses sit at full-block distance.
``sparse``
    Streaming CSR apply: matrix values and column indices are read once
    per nonzero (no reuse — infinite distance, always DRAM), while the
    gathered vector entries enjoy the same sliding-window reuse as the
    direct kernel.  Unregistered backend names get this profile too —
    the conservative no-reuse assumption for a kernel nobody measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

__all__ = ["ReuseProfile", "reuse_profile", "profile_cache_info",
           "clear_profile_cache"]


@dataclass(frozen=True)
class ReuseProfile:
    """Memory-access summary of one kernel on one block shape.

    ``distances`` is a distribution: ``(stack_distance_bytes,
    probability)`` pairs with probabilities summing to 1; an infinite
    distance models streaming (never-reused) data.
    """

    backend: str
    rows: int
    cols: int
    radius: int
    #: memory accesses one DP update issues
    accesses_per_dp: float
    #: ``(stack_distance_bytes, probability)`` pairs, probs sum to 1
    distances: Tuple[Tuple[float, float], ...]

    def mem_time_per_dp(self, hierarchy) -> float:
        """Expected memory seconds per DP update against ``hierarchy``."""
        return self.accesses_per_dp * sum(
            p * hierarchy.access_time(d) for d, p in self.distances)


def _direct_profile(rows: int, cols: int, radius: int):
    R = radius
    span = 2 * R + 1
    J = float(span * span)
    near = span * 8.0                       # same-row stencil segment
    window = span * (cols + 2 * R) * 8.0    # sliding row window
    p_near = span / J
    return J, ((near, p_near), (window, 1.0 - p_near))


def _fft_profile(rows: int, cols: int, radius: int):
    R = radius
    padded_rows, padded_cols = rows + 2 * R, cols + 2 * R
    n = padded_rows * padded_cols
    passes = max(1.0, math.ceil(math.log2(n)))
    # per *padded* point, 5 touches per butterfly pass; per DP update
    # the whole padded block is transformed for rows*cols outputs
    accesses = 5.0 * passes * n / float(rows * cols)
    row_set = padded_cols * 8.0             # small-stride working set
    full = n * 8.0                          # large-stride passes
    return accesses, ((row_set, 0.5), (full, 0.5))


def _sparse_profile(rows: int, cols: int, radius: int):
    R = radius
    span = 2 * R + 1
    J = float(span * span)
    window = span * (cols + 2 * R) * 8.0    # gathered-vector reuse
    # per nonzero: streamed value + column index, one vector gather
    return 3.0 * J, ((window, 1.0 / 3.0), (math.inf, 2.0 / 3.0))


_PROFILES = {"direct": _direct_profile, "fft": _fft_profile,
             "sparse": _sparse_profile}


@lru_cache(maxsize=256)
def reuse_profile(backend: str, rows: int, cols: int,
                  radius: int) -> ReuseProfile:
    """The (memoized) offline profile of ``backend`` on this shape."""
    if rows <= 0 or cols <= 0 or radius < 0:
        raise ValueError(f"bad block shape {rows}x{cols}, radius {radius}")
    builder = _PROFILES.get(backend, _sparse_profile)
    accesses, distances = builder(rows, cols, radius)
    return ReuseProfile(backend=backend, rows=int(rows), cols=int(cols),
                        radius=int(radius), accesses_per_dp=float(accesses),
                        distances=distances)


def profile_cache_info():
    """``functools`` cache statistics of the profile cache."""
    return reuse_profile.cache_info()


def clear_profile_cache() -> None:
    reuse_profile.cache_clear()
