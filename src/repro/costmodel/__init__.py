"""Pluggable task-cost models (DESIGN.md, *Substitution 7*).

``flat`` reproduces the seed's ``count * flops * work_factor``
arithmetic bit for bit and is the default; ``hierarchy`` prices each
task against a per-node memory hierarchy through offline reuse-distance
profiles of the kernel backends.  Selection mirrors the kernel-backend
registry: explicit names win, ``"auto"`` honors the
``REPRO_COST_MODEL`` environment override, and absent both it resolves
to ``flat``.
"""

from .base import CostModel, WorkItem
from .flat import FLAT, FlatCostModel
from .hierarchy import (DEFAULT_HIERARCHY, HierarchyCostModel,
                        MemoryHierarchy, MemoryLevel, REFERENCE_RATE)
from .profiler import (ReuseProfile, clear_profile_cache,
                       profile_cache_info, reuse_profile)
from .registry import (AUTO, DEFAULT, ENV_VAR, cost_model_names,
                       get_cost_model_class, make_cost_model,
                       register_cost_model, requested_cost_model)

__all__ = [
    "CostModel", "WorkItem",
    "FLAT", "FlatCostModel",
    "MemoryLevel", "MemoryHierarchy", "DEFAULT_HIERARCHY",
    "HierarchyCostModel", "REFERENCE_RATE",
    "ReuseProfile", "reuse_profile", "profile_cache_info",
    "clear_profile_cache",
    "AUTO", "DEFAULT", "ENV_VAR", "register_cost_model",
    "cost_model_names", "get_cost_model_class", "requested_cost_model",
    "make_cost_model",
]
