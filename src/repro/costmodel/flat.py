"""The flat cost model: the seed arithmetic, bit for bit.

``count * flops * work_factor`` evaluated left to right — exactly the
expression the cluster, solver, and service manager inlined before the
cost-model layer existed.  IEEE-754 multiplication is deterministic and
``x * 1.0 == x`` for every finite float, so resolving a
:class:`WorkItem` through this model reproduces the pre-refactor work
floats (and therefore schedules) bit-identically; the golden and
RunRecord parity tests pin this.
"""

from __future__ import annotations

from .base import CostModel, WorkItem
from .registry import register_cost_model

__all__ = ["FlatCostModel", "FLAT"]


@register_cost_model("flat")
class FlatCostModel(CostModel):
    """Cache-oblivious work: every DP update costs ``flops`` flops."""

    def __init__(self, memory=None):
        # the flat model is shape- and hierarchy-blind by definition;
        # `memory` is accepted so make_cost_model can construct every
        # registered model uniformly
        pass

    def task_work(self, item: WorkItem) -> float:
        return item.count * item.flops * item.work_factor


#: Shared stateless instance — the default wherever no model is wired.
FLAT = FlatCostModel()
