"""The stack-distance cost model: caches make block shape matter.

A :class:`MemoryHierarchy` prices one memory access by stack distance —
the access hits the first level whose capacity still holds its reuse
window, else it falls through to DRAM — and the
:class:`HierarchyCostModel` folds the expected memory time per DP
update (from the backend's offline :mod:`repro.costmodel.profiler`
profile) into the task's work units as a dimensionless slowdown:

.. math::

    work = count \\cdot flops \\cdot wf \\cdot
           \\bigl(1 + t_{mem}(backend, shape) \\cdot rate_{ref} / flops
           \\bigr)

Expressing the penalty as extra *work* (not seconds) keeps the model
composable with the DES's per-node speed traces: stragglers and warm-up
windows still scale a hierarchy-priced task exactly like a flat one.
``rate_ref`` is the reference 1e9 flops/s the registry scenarios run
their cores at, so on a default node the slowdown reads directly as
"memory stalls per unit of compute".

Slowdowns are deterministic pure floats, memoized per ``(backend,
shape, radius, flops)`` on the model instance (profiles themselves are
LRU-cached in the profiler), so schedules stay bit-reproducible and
wave-batched prefix sums see ordinary resolved work floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .base import CostModel, WorkItem
from .profiler import reuse_profile
from .registry import register_cost_model

__all__ = ["MemoryLevel", "MemoryHierarchy", "DEFAULT_HIERARCHY",
           "HierarchyCostModel", "REFERENCE_RATE"]

#: Reference core speed (DP-update flops per virtual second) the
#: slowdown is normalized against — the registry scenarios' 1 GF/s.
REFERENCE_RATE = 1e9


@dataclass(frozen=True)
class MemoryLevel:
    """One cache level: capacity bound, bandwidth, and access latency."""

    name: str
    #: bytes this level can hold (the stack-distance cutoff)
    capacity: float
    #: bytes per second once streaming
    bandwidth: float
    #: seconds per access
    latency: float


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered cache ladder with DRAM fallthrough.

    ``levels`` must be ordered smallest to largest capacity; an access
    at stack distance ``d`` is serviced by the first level with
    ``capacity >= d`` (its window still fits), else by DRAM.
    """

    levels: Tuple[MemoryLevel, ...]
    dram_bandwidth: float = 2e10
    dram_latency: float = 8e-8

    def __post_init__(self) -> None:
        caps = [lv.capacity for lv in self.levels]
        if caps != sorted(caps):
            raise ValueError("memory levels must be ordered by capacity, "
                             f"got {caps}")
        for lv in self.levels:
            if lv.capacity <= 0 or lv.bandwidth <= 0 or lv.latency < 0:
                raise ValueError(f"bad memory level {lv!r}")
        if self.dram_bandwidth <= 0 or self.dram_latency < 0:
            raise ValueError("bad DRAM parameters")

    def access_time(self, stack_distance_bytes: float) -> float:
        """Seconds one 8-byte access at this stack distance costs."""
        for lv in self.levels:
            if stack_distance_bytes <= lv.capacity:
                return lv.latency + 8.0 / lv.bandwidth
        return self.dram_latency + 8.0 / self.dram_bandwidth


#: A small contemporary-looking default ladder (used when the cluster
#: spec carries no explicit hierarchy): 32 KiB L1, 256 KiB L2, 8 MiB L3.
DEFAULT_HIERARCHY = MemoryHierarchy(levels=(
    MemoryLevel("L1", 32 * 1024, 4e11, 1e-9),
    MemoryLevel("L2", 256 * 1024, 2e11, 4e-9),
    MemoryLevel("L3", 8 * 1024 * 1024, 1e11, 1.2e-8),
))


@register_cost_model("hierarchy")
class HierarchyCostModel(CostModel):
    """Flat work scaled by the backend/shape stack-distance slowdown.

    Items with unknown shape or backend (``rows``/``cols`` 0, empty
    ``backend``) fall back to the flat arithmetic — bare unit-test
    clusters that submit raw work floats never see a penalty.
    """

    def __init__(self, memory: MemoryHierarchy = None,
                 ref_rate: float = REFERENCE_RATE):
        self.memory = DEFAULT_HIERARCHY if memory is None else memory
        self.ref_rate = float(ref_rate)
        self._slowdowns: Dict[Tuple, float] = {}

    def slowdown(self, backend: str, rows: int, cols: int, radius: int,
                 flops: float) -> float:
        """``1 + mem-time/compute-time`` for this kernel and shape."""
        key = (backend, rows, cols, radius, flops)
        cached = self._slowdowns.get(key)
        if cached is None:
            prof = reuse_profile(backend, rows, cols, radius)
            mem = prof.mem_time_per_dp(self.memory)
            compute = flops / self.ref_rate
            cached = 1.0 + mem / compute
            self._slowdowns[key] = cached
        return cached

    def task_work(self, item: WorkItem) -> float:
        base = item.count * item.flops * item.work_factor
        if item.rows <= 0 or item.cols <= 0 or not item.backend \
                or item.flops <= 0:
            return base
        return base * self.slowdown(item.backend, item.rows, item.cols,
                                    item.radius, item.flops)

    def work_scale(self, item: WorkItem) -> float:
        if item.rows <= 0 or item.cols <= 0 or not item.backend \
                or item.flops <= 0:
            return 1.0
        return self.slowdown(item.backend, item.rows, item.cols,
                             item.radius, item.flops)
