"""Cost-model registry, default, and environment override.

Selection order for a requested cost-model name, mirroring the kernel
backend and balancer-strategy registries:

1. an explicit registered name (``"flat"``, ``"hierarchy"``) is honored
   as-is — tests and ablations that pin a model get exactly that model;
2. ``"auto"`` consults the ``REPRO_COST_MODEL`` environment variable
   (the CI ``costmodel-smoke`` job forces ``hierarchy`` over the whole
   suite this way; ``=auto`` means "no override");
3. otherwise ``"auto"`` resolves to ``"flat"`` — the seed arithmetic is
   the default, so every pre-existing scenario and golden is unchanged.
"""

from __future__ import annotations

import os
from typing import Dict, List, Type

from .base import CostModel

__all__ = ["AUTO", "DEFAULT", "ENV_VAR", "register_cost_model",
           "cost_model_names", "get_cost_model_class",
           "requested_cost_model", "make_cost_model"]

#: The selection sentinel: resolve by env var, then the flat default.
AUTO = "auto"
#: What ``"auto"`` resolves to absent an override: the seed arithmetic.
DEFAULT = "flat"
#: Environment variable forcing the resolution of ``"auto"`` requests.
ENV_VAR = "REPRO_COST_MODEL"

_MODELS: Dict[str, Type[CostModel]] = {}


def register_cost_model(name: str):
    """Class decorator: register a :class:`CostModel` under ``name``."""
    def deco(cls: Type[CostModel]) -> Type[CostModel]:
        if name == AUTO:
            raise ValueError(f"{AUTO!r} is reserved for the default")
        if name in _MODELS:
            raise ValueError(f"cost model {name!r} already registered")
        cls.name = name
        _MODELS[name] = cls
        return cls
    return deco


def cost_model_names() -> List[str]:
    """All registered cost-model names, sorted (``auto`` excluded)."""
    return sorted(_MODELS)


def get_cost_model_class(name: str) -> Type[CostModel]:
    if name not in _MODELS:
        raise KeyError(f"unknown cost model {name!r}; "
                       f"known: {', '.join(cost_model_names())}")
    return _MODELS[name]


def requested_cost_model(name: str = AUTO) -> str:
    """Validate ``name`` and apply the env override to ``auto`` requests.

    Returns either a registered cost-model name or ``"auto"`` (still to
    be resolved to the flat default).  Explicit names win over the
    environment: forcing via ``REPRO_COST_MODEL`` reroutes every
    default-configured run without silently rewriting tests and
    ablations that pin a specific model.
    """
    if name == AUTO:
        forced = os.environ.get(ENV_VAR, "").strip()
        if forced and forced != AUTO:  # =auto means "no override"
            if forced not in _MODELS:
                raise ValueError(
                    f"{ENV_VAR}={forced!r} names an unknown cost model; "
                    f"known: {', '.join(cost_model_names())} (or {AUTO!r})")
            return forced
        return AUTO
    if name not in _MODELS:
        raise ValueError(f"unknown cost model {name!r}; "
                         f"known: {', '.join(cost_model_names())} "
                         f"(or {AUTO!r})")
    return name


def make_cost_model(name: str = AUTO, memory=None) -> CostModel:
    """Instantiate the cost model ``name`` resolves to.

    ``memory`` is the :class:`repro.costmodel.hierarchy.MemoryHierarchy`
    from the cluster spec (``None`` = the model's own default); the
    flat model ignores it.
    """
    resolved = requested_cost_model(name)
    if resolved == AUTO:
        resolved = DEFAULT
    return get_cost_model_class(resolved)(memory=memory)
