"""The cost-model interface: pluggable task-execution-time arithmetic.

Every layer that used to inline the flat ``count * flops * work_factor``
formula now describes a task as a :class:`WorkItem` and asks a
:class:`CostModel` for its cost.  Two things keep the refactor safe on
the simulator's bit-identical-schedule contract:

* A cost model maps a work item to **work units** (DP-update flops),
  not directly to seconds.  The DES converts work to virtual time
  through each node's :class:`repro.amt.cluster.SpeedTrace` exactly as
  before, so heterogeneous speeds, stragglers, and warm-up windows all
  compose with any cost model, and the wave-batching prefix sums
  operate on plain resolved floats.
* The default :class:`repro.costmodel.flat.FlatCostModel` evaluates the
  seed arithmetic in the same left-to-right order, so a flat-model run
  is bit-identical to the pre-refactor simulator (the parity tests pin
  this against the goldens).

``task_time`` is the derived seconds-level interface: resolve the work,
then let the node's speed trace integrate it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkItem", "CostModel"]


@dataclass(frozen=True)
class WorkItem:
    """One task's workload, described instead of pre-multiplied.

    ``count * flops * work_factor`` is the flat work; the shape fields
    (``backend``, ``rows`` x ``cols``, ``radius``) let hierarchy-aware
    models look up the kernel's reuse-distance profile.  Shape fields
    default to "unknown" (empty/zero), in which case every model falls
    back to the flat arithmetic.
    """

    #: DP updates the task performs
    count: int
    #: flops per DP update (``operator.flops_per_dp()``)
    flops: float
    #: per-SD heterogeneity multiplier (cracks, eq. 8 weights)
    work_factor: float = 1.0
    #: kernel backend executing the numerics ("" = unknown)
    backend: str = ""
    #: block shape in DPs (0 = unknown)
    rows: int = 0
    cols: int = 0
    #: ghost/stencil radius in DPs
    radius: int = 0


class CostModel:
    """Maps :class:`WorkItem` s to work units (and derived seconds).

    Subclasses implement :meth:`task_work`; they must be deterministic,
    pure functions of the item (plus construction-time configuration)
    so that schedules stay bit-reproducible and the solver's step-plan
    cache stays valid.
    """

    #: registry name, set by ``@register_cost_model``
    name = "?"

    def task_work(self, item: WorkItem) -> float:
        """Work units (DP-update flops) the item costs on any node."""
        raise NotImplementedError

    def task_time(self, item: WorkItem, node, t0: float = 0.0) -> float:
        """Virtual seconds the item takes on ``node`` starting at ``t0``.

        ``node`` is anything with a ``trace`` speed model (a
        :class:`repro.amt.cluster.SimNode`) or a bare rate in
        work-units per second.
        """
        work = self.task_work(item)
        trace = getattr(node, "trace", None)
        if trace is not None:
            return trace.time_to_complete(work, t0)
        return work / float(node)

    def work_scale(self, item: WorkItem) -> float:
        """This model's work relative to the flat model for ``item``.

        The balancer's eq-8 measurement weighs per-SD work with
        ``work_factors * work_scale`` so its view of relative cost
        matches what the simulated tasks actually charged.  The flat
        base class returns 1.0 — the solver then passes its
        ``work_factors`` array through untouched (bit-identical to the
        seed's eq-8 inputs).
        """
        return 1.0
