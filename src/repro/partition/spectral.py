"""Spectral bisection — an independent reference partitioner.

Partitions by the sign (weighted-median split) of the Fiedler vector,
the eigenvector of the graph Laplacian's second-smallest eigenvalue.
Spectral methods are the classical pre-multilevel benchmark (and the
quality bar Karypis & Kumar compared METIS against), so having one in
the library lets the ablation quantify the multilevel scheme against a
structurally different algorithm, not just geometric heuristics.

Implementation notes: the Laplacian is assembled sparse; the Fiedler
vector comes from ``scipy.sparse.linalg.eigsh`` with a deflation shift,
falling back to dense ``eigh`` for small or ill-conditioned graphs.
K-way is recursive bisection, like the multilevel driver.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import eigsh

from .graph import Graph, graph_from_edges

__all__ = ["fiedler_vector", "spectral_bisection", "spectral_partition"]


def _laplacian(graph: Graph) -> sp.csr_matrix:
    n = graph.num_vertices
    rows, cols, vals = [], [], []
    for v in range(n):
        deg = 0.0
        for u, w in zip(graph.neighbors(v), graph.edge_weights(v)):
            rows.append(v)
            cols.append(int(u))
            vals.append(-float(w))
            deg += float(w)
        rows.append(v)
        cols.append(v)
        vals.append(deg)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def fiedler_vector(graph: Graph) -> np.ndarray:
    """The eigenvector for the second-smallest Laplacian eigenvalue.

    Assumes a connected graph (the components would otherwise each
    contribute a zero eigenvalue and the "Fiedler" vector is just a
    component indicator).
    """
    n = graph.num_vertices
    if n < 2:
        raise ValueError("need at least two vertices")
    L = _laplacian(graph)
    if n <= 64:
        vals, vecs = np.linalg.eigh(L.toarray())
        return vecs[:, 1]
    try:
        # shift-invert around 0 finds the smallest eigenvalues quickly
        vals, vecs = eigsh(L, k=2, sigma=-1e-8, which="LM")
        order = np.argsort(vals)
        return vecs[:, order[1]]
    except Exception:  # pragma: no cover - scipy solver corner cases
        vals, vecs = np.linalg.eigh(L.toarray())
        return vecs[:, 1]


def spectral_bisection(graph: Graph,
                       target_fraction: float = 0.5) -> np.ndarray:
    """Bisect by thresholding the Fiedler vector at its weighted quantile.

    Part 0 receives the vertices with the smallest Fiedler coordinates
    until it holds ``target_fraction`` of the vertex weight.
    """
    if not 0.0 < target_fraction < 1.0:
        raise ValueError(f"target_fraction must be in (0,1), got {target_fraction}")
    n = graph.num_vertices
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    fiedler = fiedler_vector(graph)
    order = np.argsort(fiedler, kind="stable")
    cum = np.cumsum(graph.vwgt[order])
    total = cum[-1]
    split = int(np.searchsorted(cum, target_fraction * total))
    split = min(max(split, 1), n - 1)
    parts = np.ones(n, dtype=np.int64)
    parts[order[:split]] = 0
    return parts


def spectral_partition(graph: Graph, k: int) -> np.ndarray:
    """K-way spectral partitioning via recursive bisection."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    parts = np.zeros(n, dtype=np.int64)
    if k == 1 or n == 0:
        return parts
    _recurse(graph, np.arange(n, dtype=np.int64), k, 0, parts)
    return parts


def _recurse(original: Graph, vertices: np.ndarray, k: int,
             first: int, parts: np.ndarray) -> None:
    if k == 1 or len(vertices) == 0:
        parts[vertices] = first
        return
    if len(vertices) == 1:
        parts[vertices] = first
        return
    sub = _induced(original, vertices)
    k_left = k // 2
    local = spectral_bisection(sub, target_fraction=k_left / k)
    left = vertices[local == 0]
    right = vertices[local == 1]
    if len(left) == 0 or len(right) == 0:
        half = max(1, len(vertices) * k_left // k)
        left, right = vertices[:half], vertices[half:]
    _recurse(original, left, k_left, first, parts)
    _recurse(original, right, k - k_left, first + k_left, parts)


def _induced(graph: Graph, vertices: np.ndarray) -> Graph:
    local_of = {int(v): i for i, v in enumerate(vertices)}
    edges, weights = [], []
    for i, v in enumerate(vertices):
        for u, w in zip(graph.neighbors(int(v)), graph.edge_weights(int(v))):
            j = local_of.get(int(u))
            if j is not None and i < j:
                edges.append((i, j))
                weights.append(float(w))
    coords = None if graph.coords is None else graph.coords[vertices]
    return graph_from_edges(len(vertices), edges, vwgt=graph.vwgt[vertices],
                            edge_weights=weights, coords=coords)
