"""Partition quality metrics: edge cut, balance, contiguity.

These are the quantities the paper's partitioning requirements are stated
in: METIS "ensures that the resulting partition is optimal and results in
minimum data exchange" (edge cut) while the load balancer must keep each
SP contiguous.  Every partitioner and the load balancer are validated
against these metrics in the test suite and compared in the ablation
benchmarks.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .graph import Graph

__all__ = ["edge_cut", "part_weights", "imbalance", "num_parts_used",
           "parts_are_contiguous", "boundary_vertices", "PartitionReport",
           "evaluate_partition"]


def _check(graph: Graph, parts: np.ndarray) -> np.ndarray:
    parts = np.asarray(parts, dtype=np.int64)
    if len(parts) != graph.num_vertices:
        raise ValueError(
            f"partition length {len(parts)} != num vertices {graph.num_vertices}")
    if len(parts) and parts.min() < 0:
        raise ValueError("negative part id")
    return parts


def edge_cut(graph: Graph, parts: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts.

    This is the quantity METIS minimizes; it is proportional to the ghost
    bytes exchanged per timestep by the distributed solver.
    """
    parts = _check(graph, parts)
    cut = 0.0
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors(v)
        wgts = graph.edge_weights(v)
        mask = parts[nbrs] != parts[v]
        cut += float(wgts[mask].sum())
    return cut / 2.0  # every undirected edge was seen from both ends


def part_weights(graph: Graph, parts: np.ndarray, k: int) -> np.ndarray:
    """Vertex-weight sum per part (length ``k``)."""
    parts = _check(graph, parts)
    out = np.zeros(k)
    np.add.at(out, parts, graph.vwgt)
    return out


def imbalance(graph: Graph, parts: np.ndarray, k: int) -> float:
    """Max part weight divided by the ideal average (1.0 is perfect).

    Matches METIS's load-imbalance definition; a value of 1.05 means the
    heaviest part is 5% above average.
    """
    weights = part_weights(graph, parts, k)
    ideal = graph.total_vertex_weight() / k
    if ideal == 0:
        return 1.0
    return float(weights.max() / ideal)


def num_parts_used(parts: np.ndarray) -> int:
    """Number of distinct part ids actually present."""
    return len(np.unique(np.asarray(parts)))


def parts_are_contiguous(graph: Graph, parts: np.ndarray) -> bool:
    """Whether every part induces a connected subgraph.

    Empty parts count as contiguous.  The paper's transfer policy is
    designed to preserve this property ("retain a contiguous locality of
    the SDs").
    """
    parts = _check(graph, parts)
    for p in np.unique(parts):
        members = np.nonzero(parts == p)[0]
        if not graph.subgraph_is_connected(members):
            return False
    return True


def boundary_vertices(graph: Graph, parts: np.ndarray) -> np.ndarray:
    """Vertices with at least one neighbour in a different part.

    These are the SDs that must exchange ghost data across nodes —
    exactly the paper's "Case 1" SDs.
    """
    parts = _check(graph, parts)
    out: List[int] = []
    for v in range(graph.num_vertices):
        if np.any(parts[graph.neighbors(v)] != parts[v]):
            out.append(v)
    return np.asarray(out, dtype=np.int64)


class PartitionReport:
    """Bundle of quality metrics for one partition (see :func:`evaluate_partition`)."""

    def __init__(self, k: int, cut: float, imbalance_ratio: float,
                 contiguous: bool, parts_used: int,
                 weights: np.ndarray) -> None:
        self.k = k
        self.cut = cut
        self.imbalance = imbalance_ratio
        self.contiguous = contiguous
        self.parts_used = parts_used
        self.weights = weights

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for table rendering."""
        return {
            "k": self.k,
            "edge_cut": self.cut,
            "imbalance": self.imbalance,
            "contiguous": self.contiguous,
            "parts_used": self.parts_used,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PartitionReport k={self.k} cut={self.cut:.3g} "
                f"imb={self.imbalance:.3f} contig={self.contiguous}>")


def evaluate_partition(graph: Graph, parts: np.ndarray, k: int) -> PartitionReport:
    """Compute all quality metrics for ``parts`` at once."""
    return PartitionReport(
        k=k,
        cut=edge_cut(graph, parts),
        imbalance_ratio=imbalance(graph, parts, k),
        contiguous=parts_are_contiguous(graph, parts),
        parts_used=num_parts_used(parts),
        weights=part_weights(graph, parts, k),
    )
