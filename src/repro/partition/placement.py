"""Topology-aware part → node placement.

A partitioner (:mod:`repro.partition.kway` and friends) decides *which
SDs belong together*; it says nothing about *which physical node* each
part should land on.  On a flat network that choice is irrelevant —
every node pair is equidistant — but on a rack hierarchy
(:mod:`repro.amt.topology`) it decides whether the ghost traffic
between adjacent parts crosses an oversubscribed uplink or stays inside
a rack.

This module permutes **part labels onto node ids** (a bijection — it
never changes which SDs share a part):

* :func:`rack_aware_mapping` — greedy affinity grouping: parts that
  share long SD boundaries are packed into the same rack, so the heavy
  ghost exchanges become intra-rack;
* :func:`scattered_mapping` — the adversarial baseline: parts are dealt
  round-robin across racks, maximizing inter-rack boundary traffic (what
  a placement-oblivious scheduler can easily do to you);
* :func:`apply_placement` — the spec-level entry point dispatching on
  :class:`repro.experiments.spec.PartitionSpec`'s ``placement`` field.

Everything is deterministic (ties break toward lower part/node ids), so
simulated schedules stay bit-identical across runs and sweep workers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..mesh.subdomain import SubdomainGrid

__all__ = ["part_affinity", "rack_aware_mapping", "scattered_mapping",
           "apply_placement"]


def part_affinity(sd_grid: SubdomainGrid, parts: np.ndarray,
                  num_parts: int) -> np.ndarray:
    """Symmetric part-adjacency weights: shared SD face count per pair.

    ``W[p, q]`` counts the SD face adjacencies between parts ``p`` and
    ``q`` — a proxy for the ghost bytes the pair exchanges every
    timestep (uniform SDs, fixed halo width).
    """
    parts = np.asarray(parts, dtype=np.int64)
    if len(parts) != sd_grid.num_subdomains:
        raise ValueError(
            f"parts length {len(parts)} != SD count "
            f"{sd_grid.num_subdomains}")
    W = np.zeros((num_parts, num_parts), dtype=np.int64)
    for sd in range(sd_grid.num_subdomains):
        p = parts[sd]
        for nb in sd_grid.face_neighbors(sd):
            if nb > sd:
                q = parts[nb]
                if p != q:
                    W[p, q] += 1
                    W[q, p] += 1
    return W


def _racks_to_nodes(node_racks: Sequence[int]) -> Dict[int, List[int]]:
    """Rack id → sorted node ids, racks in ascending id order."""
    groups: Dict[int, List[int]] = {}
    for node, rack in enumerate(node_racks):
        groups.setdefault(int(rack), []).append(node)
    return {rack: sorted(nodes) for rack, nodes in sorted(groups.items())}


def _grow_group(affinity: np.ndarray, seed: int,
                unassigned: List[int], cap: int) -> List[int]:
    """Greedy group around ``seed``: repeatedly absorb the unassigned
    part with the largest affinity to the group (ties → lowest id)."""
    group = [seed]
    rest = [p for p in unassigned if p != seed]
    while len(group) < cap and rest:
        scores = [affinity[p, group].sum() for p in rest]
        group.append(rest.pop(int(np.argmax(scores))))
    return group


def rack_aware_mapping(affinity: np.ndarray,
                       node_racks: Sequence[int]) -> np.ndarray:
    """Part → node bijection packing strongly-adjacent parts per rack.

    Racks are filled in ascending rack-id order.  For each rack, every
    remaining part is tried as a greedy-growth seed and the grouping
    with the largest internal affinity wins (a central seed tends to
    cut through the middle of a part cluster; trying all seeds finds
    the cluster instead).  A final pairwise-swap refinement pass moves
    any part pair whose exchange increases the total intra-rack
    affinity (equivalently: decreases the bytes crossing rack
    boundaries).  All ties break toward lower part ids, so the mapping
    is deterministic; on a single-rack (flat) topology it degenerates
    to the identity, so enabling rack placement under the default
    topology changes nothing.
    """
    k = len(node_racks)
    affinity = np.asarray(affinity, dtype=np.float64)
    if affinity.shape != (k, k):
        raise ValueError(
            f"affinity must be {k}x{k} (one row per node), "
            f"got {affinity.shape}")
    rack_nodes = _racks_to_nodes(node_racks)
    groups: Dict[int, List[int]] = {}
    unassigned = list(range(k))
    for rack, nodes in rack_nodes.items():
        cap = min(len(nodes), len(unassigned))
        best_group: List[int] = []
        best_score = -1.0
        for seed in unassigned:
            group = _grow_group(affinity, seed, unassigned, cap)
            score = float(affinity[np.ix_(group, group)].sum())
            if score > best_score:
                best_group, best_score = group, score
        groups[rack] = best_group
        unassigned = [p for p in unassigned if p not in best_group]
    # pairwise-swap refinement: exchange parts across racks while it
    # strictly increases the intra-rack affinity total
    rack_of_part = {p: rack for rack, group in groups.items()
                    for p in group}
    improved = True
    while improved:
        improved = False
        for p in range(k):
            for q in range(p + 1, k):
                rp, rq = rack_of_part[p], rack_of_part[q]
                if rp == rq:
                    continue
                gp = [x for x in groups[rp] if x != p]
                gq = [x for x in groups[rq] if x != q]
                gain = (affinity[p, gq].sum() + affinity[q, gp].sum()
                        - affinity[p, gp].sum() - affinity[q, gq].sum())
                if gain > 1e-12:
                    groups[rp].remove(p)
                    groups[rq].remove(q)
                    groups[rp].append(q)
                    groups[rq].append(p)
                    rack_of_part[p], rack_of_part[q] = rq, rp
                    improved = True
    # prefer the identity when it is just as good: if the partitioner's
    # own labels already achieve the same (or a better) inter-rack cut,
    # keep them — permuting equal-cut labels only perturbs second-order
    # link-queueing interleaves for no byte win
    def intra_total(gs: Dict[int, List[int]]) -> float:
        return float(sum(affinity[np.ix_(g, g)].sum()
                         for g in gs.values()))

    identity_groups: Dict[int, List[int]] = {}
    for node, rack in enumerate(node_racks):
        identity_groups.setdefault(int(rack), []).append(node)
    if intra_total(groups) <= intra_total(identity_groups) + 1e-12:
        groups = identity_groups
    mapping = np.full(k, -1, dtype=np.int64)
    for rack, nodes in rack_nodes.items():
        for node, part in zip(nodes, sorted(groups[rack])):
            mapping[part] = node
    if np.any(mapping < 0):
        raise ValueError(
            f"node_racks provides {k} slots but left parts unplaced")
    return mapping


def scattered_mapping(node_racks: Sequence[int]) -> np.ndarray:
    """Part → node bijection dealing consecutive parts across racks.

    Round-robin over the racks: part 0 goes to the first rack's first
    node, part 1 to the second rack's first node, and so on — so parts
    with nearby labels (which geometric partitioners make spatially
    adjacent) land in different racks.  The deliberately-bad baseline
    for the topology ablation.
    """
    groups = list(_racks_to_nodes(node_racks).values())
    order: List[int] = []
    depth = 0
    while len(order) < len(node_racks):
        for nodes in groups:
            if depth < len(nodes):
                order.append(nodes[depth])
        depth += 1
    k = len(node_racks)
    mapping = np.empty(k, dtype=np.int64)
    mapping[:] = order
    return mapping


def apply_placement(sd_grid: SubdomainGrid, parts: np.ndarray,
                    node_racks: Sequence[int],
                    placement: str) -> np.ndarray:
    """Relabel ``parts`` per the requested placement policy.

    ``placement`` is one of ``"none"`` (identity), ``"rack"``
    (:func:`rack_aware_mapping` on the SD-boundary affinity), or
    ``"scatter"`` (:func:`scattered_mapping`).  The returned array is a
    fresh copy; the grouping of SDs into parts is untouched — only the
    part → node assignment changes.
    """
    parts = np.asarray(parts, dtype=np.int64)
    if placement == "none":
        return parts.copy()
    if placement == "rack":
        affinity = part_affinity(sd_grid, parts, len(node_racks))
        mapping = rack_aware_mapping(affinity, node_racks)
    elif placement == "scatter":
        mapping = scattered_mapping(node_racks)
    else:
        raise ValueError(f"unknown placement {placement!r}; "
                         f"expected 'none', 'rack', or 'scatter'")
    return mapping[parts]
