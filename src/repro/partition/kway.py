"""Multilevel k-way partitioning driver — the METIS substitute.

Implements the structure of ``METIS_PartMeshDual`` as the paper uses it:
k-way partitioning of the SD dual graph via **recursive bisection**, where
each bisection is **multilevel** (heavy-edge-matching coarsening, greedy
graph growing on the coarsest graph, FM refinement at every level on the
way back up).

The public entry point is :func:`partition_graph`; :func:`partition_sd_grid`
is the convenience wrapper the solvers call for the paper's square SD
grids.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .coarsen import CoarseLevel, coarsen_level
from .graph import Graph, graph_from_edges, grid_dual_graph
from .initial import best_bisection
from .refine import fm_refine_bisection

__all__ = ["multilevel_bisection", "partition_graph", "partition_sd_grid"]

#: Stop coarsening below this size; GGGP is fine on graphs this small.
COARSEST_SIZE = 24


def multilevel_bisection(graph: Graph, target_fraction: float,
                         rng: np.random.Generator,
                         balance: float = 1.05) -> np.ndarray:
    """Bisect ``graph`` so part 0 holds ``target_fraction`` of the weight.

    The full multilevel cycle: coarsen until ``COARSEST_SIZE``, bisect the
    coarsest graph with greedy growing, then project + FM-refine back
    up the hierarchy.  Unequal targets (e.g. 3/7 of the weight) are needed
    by recursive bisection for non-power-of-two ``k``.
    """
    if not 0.0 < target_fraction < 1.0:
        raise ValueError(f"target_fraction must be in (0,1), got {target_fraction}")
    # coarsening phase
    levels: List[CoarseLevel] = []
    current = graph
    while current.num_vertices > COARSEST_SIZE:
        level = coarsen_level(current, rng)
        if level is None:
            break
        levels.append(level)
        current = level.graph

    # initial partition on the coarsest graph
    target_weight = target_fraction * current.total_vertex_weight()
    parts = best_bisection(current, target_weight, rng)
    parts = _refine_asymmetric(current, parts, target_fraction, balance)

    # uncoarsening + refinement
    for level in reversed(levels):
        parts = parts[level.fine_to_coarse]
        finer = _finer_graph(levels, level, graph)
        parts = _refine_asymmetric(finer, parts, target_fraction, balance)
    return parts


def _finer_graph(levels: List[CoarseLevel], level: CoarseLevel,
                 original: Graph) -> Graph:
    """The graph one level finer than ``level`` in the hierarchy."""
    idx = levels.index(level)
    return original if idx == 0 else levels[idx - 1].graph


def _refine_asymmetric(graph: Graph, parts: np.ndarray,
                       target_fraction: float, balance: float) -> np.ndarray:
    """FM refinement holding the asymmetric weight split.

    Each side is capped at ``balance`` times its own target weight, so the
    split cannot drift back toward 50/50 when the recursion asked for an
    uneven cut (needed for non-power-of-two ``k`` and weighted targets).
    """
    return fm_refine_bisection(
        graph, parts, balance=balance,
        target_fractions=(target_fraction, 1.0 - target_fraction))


def partition_graph(graph: Graph, k: int, seed: int = 0,
                    balance: float = 1.05,
                    target_weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Partition ``graph`` into ``k`` parts via multilevel recursive bisection.

    Parameters
    ----------
    k:
        Number of parts (compute nodes).
    seed:
        Seed for the internal RNG; identical inputs and seed give an
        identical partition (tests rely on this).
    balance:
        Per-bisection imbalance tolerance.
    target_weights:
        Optional length-``k`` relative part weights (normalized
        internally).  This is how the load-balancing comparison assigns
        more SDs to faster nodes up front; default is uniform.

    Returns
    -------
    int64 array of part ids in ``[0, k)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    if target_weights is None:
        targets = np.full(k, 1.0 / k)
    else:
        targets = np.asarray(target_weights, dtype=np.float64)
        if len(targets) != k:
            raise ValueError(f"need {k} target weights, got {len(targets)}")
        if np.any(targets <= 0):
            raise ValueError("target weights must be positive")
        targets = targets / targets.sum()
    parts = np.zeros(n, dtype=np.int64)
    if k == 1 or n == 0:
        return parts
    rng = np.random.default_rng(seed)
    _recurse(graph, np.arange(n, dtype=np.int64), targets, 0, parts,
             rng, balance)
    return parts


def _recurse(original: Graph, vertices: np.ndarray, targets: np.ndarray,
             first_part: int, parts: np.ndarray, rng: np.random.Generator,
             balance: float) -> None:
    """Recursively bisect the induced subgraph on ``vertices``.

    ``targets`` are the (normalized) weights of the parts this region must
    produce; part ids are assigned starting at ``first_part``.
    """
    k = len(targets)
    if k == 1:
        parts[vertices] = first_part
        return
    sub, _ = _induced_subgraph(original, vertices)
    k_left = k // 2
    frac_left = float(targets[:k_left].sum())
    local = multilevel_bisection(sub, frac_left, rng, balance=balance)
    left = vertices[local == 0]
    right = vertices[local == 1]
    # degenerate splits can occur on tiny graphs; fall back to a weight-
    # ordered split so every part receives at least one vertex when possible
    if len(left) == 0 or len(right) == 0:
        order = vertices[np.argsort(-original.vwgt[vertices], kind="stable")]
        split = max(1, int(round(frac_left * len(order))))
        split = min(split, len(order) - 1) if len(order) > 1 else len(order)
        left, right = order[:split], order[split:]
    _recurse(original, left, targets[:k_left] / max(targets[:k_left].sum(), 1e-300),
             first_part, parts, rng, balance)
    if len(right):
        _recurse(original, right,
                 targets[k_left:] / max(targets[k_left:].sum(), 1e-300),
                 first_part + k_left, parts, rng, balance)


def _induced_subgraph(graph: Graph, vertices: np.ndarray):
    """Induced subgraph plus the local->global vertex map."""
    local_of = {int(v): i for i, v in enumerate(vertices)}
    edges = []
    weights = []
    for i, v in enumerate(vertices):
        for u, w in zip(graph.neighbors(int(v)), graph.edge_weights(int(v))):
            j = local_of.get(int(u))
            if j is not None and i < j:
                edges.append((i, j))
                weights.append(float(w))
    coords = None if graph.coords is None else graph.coords[vertices]
    sub = graph_from_edges(len(vertices), edges, vwgt=graph.vwgt[vertices],
                           edge_weights=weights, coords=coords)
    return sub, vertices


def partition_sd_grid(nx: int, ny: int, k: int, seed: int = 0,
                      vwgt: Optional[Sequence[float]] = None,
                      target_weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Partition an ``nx × ny`` SD grid into ``k`` node territories.

    The convenience entry point matching the paper's use of
    ``METIS_PartMeshDual`` on the SD mesh (e.g. 16×16 SDs across up to 16
    nodes for Fig. 13).  Returns part ids indexed by ``iy * nx + ix``.
    """
    graph = grid_dual_graph(nx, ny, vwgt=vwgt)
    return partition_graph(graph, k, seed=seed, target_weights=target_weights)
