"""Initial bisection of the coarsest graph: greedy graph growing (GGGP).

Karypis & Kumar's multilevel scheme bisects the coarsest graph with a
cheap heuristic and lets refinement do the real work.  We implement
greedy graph growing: start a region from a (pseudo-peripheral) seed and
repeatedly absorb the frontier vertex whose absorption decreases the cut
most, until the region holds half the vertex weight.  Several trials from
different seeds are run and the best cut kept.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from .graph import Graph
from .metrics import edge_cut

__all__ = ["pseudo_peripheral_vertex", "grow_bisection", "best_bisection"]


def pseudo_peripheral_vertex(graph: Graph, start: int = 0) -> int:
    """Find an approximately peripheral vertex by repeated BFS.

    Two BFS sweeps: the farthest vertex from ``start``, then the farthest
    vertex from that one.  Peripheral seeds make grown regions long and
    thin less often, which lowers the initial cut.
    """
    def bfs_farthest(seed: int) -> int:
        n = graph.num_vertices
        dist = np.full(n, -1, dtype=np.int64)
        dist[seed] = 0
        frontier = [seed]
        last = seed
        while frontier:
            nxt = []
            for v in frontier:
                for u in graph.neighbors(v):
                    if dist[u] == -1:
                        dist[u] = dist[v] + 1
                        nxt.append(int(u))
                        last = int(u)
            frontier = nxt
        return last

    if graph.num_vertices == 0:
        raise ValueError("empty graph")
    return bfs_farthest(bfs_farthest(start))


def grow_bisection(graph: Graph, target_weight: float,
                   seed_vertex: int) -> np.ndarray:
    """Grow part 0 from ``seed_vertex`` until it reaches ``target_weight``.

    Greedy criterion: among frontier vertices, absorb the one with the
    largest *gain* (weight of edges into the region minus weight of edges
    out), the same gain FM refinement uses.  Disconnected leftovers are
    possible on pathological graphs; the caller's refinement pass cleans
    up balance.

    Returns a 0/1 part array.
    """
    n = graph.num_vertices
    parts = np.ones(n, dtype=np.int64)  # everything starts in part 1
    in_region = np.zeros(n, dtype=bool)
    grown = 0.0

    # max-heap on gain via negated keys; lazy deletion with stamp checks
    gain = np.zeros(n)
    heap: list = []
    stamp = np.zeros(n, dtype=np.int64)

    def push(v: int) -> None:
        stamp[v] += 1
        heapq.heappush(heap, (-gain[v], v, stamp[v]))

    def absorb(v: int) -> None:
        nonlocal grown
        parts[v] = 0
        in_region[v] = True
        grown += float(graph.vwgt[v])
        for u, w in zip(graph.neighbors(v), graph.edge_weights(v)):
            if not in_region[u]:
                gain[u] += 2.0 * w  # edge flips from "out" to "in"
                push(int(u))

    # seed the frontier gains: gain = (edges into region) - (edges out)
    for v in range(n):
        gain[v] = -float(graph.edge_weights(v).sum())
    absorb(seed_vertex)

    def would_overshoot(v: int) -> bool:
        # stop rather than badly overshoot the target weight
        return (grown + graph.vwgt[v] > 1.5 * target_weight
                and grown > 0.5 * target_weight)

    while grown < target_weight:
        if not heap:
            # the seed's component is exhausted: recursive bisection
            # hands us disconnected regions, and stopping here used to
            # return a degenerate split (e.g. weight 1 vs 38) whose
            # zero cut then won best_bisection — jump to a fresh
            # component and keep growing toward the target
            remaining = np.flatnonzero(~in_region)
            if remaining.size == 0:
                break
            v = int(remaining[0])
            if would_overshoot(v):
                break
            absorb(v)
            continue
        neg_gain, v, st = heapq.heappop(heap)
        if in_region[v] or st != stamp[v]:
            continue
        if would_overshoot(v):
            break
        absorb(v)
    return parts


def best_bisection(graph: Graph, target_weight: float,
                   rng: np.random.Generator, trials: int = 4) -> np.ndarray:
    """Run several growing trials; return the best partition.

    The first trial seeds from a pseudo-peripheral vertex; remaining
    trials use random seeds.  ``trials`` is small because refinement
    dominates the final quality.

    Trials compare by ``(badly unbalanced?, cut)``: a trial whose part-0
    weight misses the target by more than 50% loses to any roughly
    balanced one regardless of cut — otherwise a tiny isolated
    component (cut 0) beats every genuine bisection and the downstream
    refinement, which only improves cuts, is stuck with it.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    best: Optional[Tuple[Tuple[bool, float], np.ndarray]] = None
    seeds = [pseudo_peripheral_vertex(graph)]
    seeds += [int(rng.integers(0, n)) for _ in range(max(0, trials - 1))]
    for seed in seeds:
        parts = grow_bisection(graph, target_weight, seed)
        w0 = float(graph.vwgt[parts == 0].sum())
        deviation = abs(w0 - target_weight) / max(target_weight, 1e-300)
        key = (deviation > 0.5, edge_cut(graph, parts))
        if best is None or key < best[0]:
            best = (key, parts)
    assert best is not None
    return best[1]
