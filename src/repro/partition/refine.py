"""Fiduccia–Mattheyses (FM) boundary refinement for bisections.

The uncoarsening phase of the multilevel partitioner projects the coarse
partition to the finer graph and runs FM passes: vertices are moved one at
a time to the other side in order of gain (cut-weight decrease), moved
vertices are locked for the rest of the pass, and the best prefix of the
move sequence is kept.  Moves that would violate the balance constraint
are skipped.  This is the same refinement family METIS uses; its key
property — a pass never *increases* the cut — is enforced by the
best-prefix rollback and asserted by the property tests.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from .graph import Graph
from .metrics import edge_cut

__all__ = ["fm_refine_bisection", "compute_gains"]


def compute_gains(graph: Graph, parts: np.ndarray) -> np.ndarray:
    """Gain of moving each vertex to the opposite side.

    ``gain[v] = (weight to other side) - (weight to own side)``; positive
    gain means the move reduces the cut by that amount.
    """
    n = graph.num_vertices
    gains = np.zeros(n)
    for v in range(n):
        nbrs = graph.neighbors(v)
        wgts = graph.edge_weights(v)
        same = parts[nbrs] == parts[v]
        gains[v] = float(wgts[~same].sum() - wgts[same].sum())
    return gains


def _one_pass(graph: Graph, parts: np.ndarray, max_weight: np.ndarray) -> float:
    """Run a single FM pass in place; return the cut improvement (>= 0).

    ``max_weight`` is a per-side cap ``[w0_max, w1_max]``; a move into a
    side is skipped when it would push that side past its cap.
    """
    n = graph.num_vertices
    gains = compute_gains(graph, parts)
    side_weight = np.zeros(2)
    np.add.at(side_weight, parts, graph.vwgt)

    locked = np.zeros(n, dtype=bool)
    stamp = np.zeros(n, dtype=np.int64)
    heap: List[Tuple[float, int, int]] = []

    def push(v: int) -> None:
        stamp[v] += 1
        heapq.heappush(heap, (-gains[v], v, int(stamp[v])))

    for v in range(n):
        # only boundary vertices can have useful gains, but pushing all
        # keeps the pass correct on graphs with isolated vertices
        push(v)

    moves: List[int] = []
    cum_gain = 0.0
    best_gain = 0.0
    best_prefix = 0

    while heap:
        neg_gain, v, st = heapq.heappop(heap)
        if locked[v] or st != stamp[v]:
            continue
        src = int(parts[v])
        dst = 1 - src
        if side_weight[dst] + graph.vwgt[v] > max_weight[dst]:
            locked[v] = True  # cannot move this pass; try others
            continue
        # apply the move
        locked[v] = True
        parts[v] = dst
        side_weight[src] -= graph.vwgt[v]
        side_weight[dst] += graph.vwgt[v]
        cum_gain += -neg_gain
        moves.append(v)
        if cum_gain > best_gain + 1e-12:
            best_gain = cum_gain
            best_prefix = len(moves)
        # update neighbour gains
        for u, w in zip(graph.neighbors(v), graph.edge_weights(v)):
            if locked[u]:
                continue
            if parts[u] == dst:
                gains[u] -= 2.0 * w
            else:
                gains[u] += 2.0 * w
            push(int(u))

    # roll back everything after the best prefix
    for v in moves[best_prefix:]:
        parts[v] = 1 - parts[v]
    return best_gain


def _rebalance(graph: Graph, parts: np.ndarray,
               max_weight: np.ndarray) -> None:
    """Force an overweight side back under its cap, in place.

    Balance beats cut here (as in METIS): vertices leave the overweight
    side in order of gain — least cut damage first — until the cap
    holds or only one vertex remains.  Gains are not updated between
    moves; this is coarse repair of degenerate inputs (e.g. a
    disconnected region whose initial bisection collapsed), and the FM
    passes that follow clean up the cut.
    """
    side_weight = np.zeros(2)
    np.add.at(side_weight, parts, graph.vwgt)
    for s in (0, 1):
        if side_weight[s] <= max_weight[s]:
            continue
        gains = compute_gains(graph, parts)
        heap = [(-gains[v], v) for v in np.flatnonzero(parts == s)]
        heapq.heapify(heap)
        n_side = len(heap)
        while side_weight[s] > max_weight[s] and n_side > 1 and heap:
            _, v = heapq.heappop(heap)
            parts[v] = 1 - s
            side_weight[s] -= graph.vwgt[v]
            side_weight[1 - s] += graph.vwgt[v]
            n_side -= 1


def fm_refine_bisection(graph: Graph, parts: np.ndarray,
                        balance: float = 1.05,
                        max_passes: int = 8,
                        target_fractions: Tuple[float, float] = (0.5, 0.5)) -> np.ndarray:
    """Refine a 0/1 partition in place; returns ``parts`` for chaining.

    Parameters
    ----------
    balance:
        Allowed imbalance: side ``s`` may not exceed
        ``balance * target_fractions[s] * total_weight``.  If the incoming
        partition violates a cap, it is first *repaired* — vertices
        leave the overweight side, least cut damage first, until the cap
        holds (``_rebalance``).  The previous behavior of relaxing the
        cap to the incoming weight let a degenerate initial bisection
        (a 1/38 split of a disconnected region) survive refinement
        untouched and surface as an imbalanced final partition.
    max_passes:
        Upper bound on FM passes; iteration stops early once a pass
        yields no improvement.
    target_fractions:
        Intended weight split between the two sides; recursive bisection
        for non-power-of-two ``k`` passes asymmetric targets here so FM
        cannot drift the split back toward 50/50.
    """
    parts = np.asarray(parts, dtype=np.int64)
    if set(np.unique(parts)) - {0, 1}:
        raise ValueError("fm_refine_bisection expects a 0/1 partition")
    f0, f1 = target_fractions
    if f0 <= 0 or f1 <= 0:
        raise ValueError(f"target fractions must be positive, got {target_fractions}")
    total = graph.total_vertex_weight()
    current = np.zeros(2)
    np.add.at(current, parts, graph.vwgt)
    max_weight = np.array([balance * f0 * total, balance * f1 * total])
    if current[0] > max_weight[0] or current[1] > max_weight[1]:
        _rebalance(graph, parts, max_weight)
        # vertex granularity can make a cap unreachable (e.g. one
        # heavy coarse vertex); never let the FM passes make balance
        # worse than the repaired state
        current[:] = 0.0
        np.add.at(current, parts, graph.vwgt)
        max_weight = np.maximum(max_weight, current)

    for _ in range(max_passes):
        improvement = _one_pass(graph, parts, max_weight)
        if improvement <= 1e-12:
            break
    return parts


def refine_cut_value(graph: Graph, parts: np.ndarray) -> float:
    """Convenience wrapper used in tests: cut after refinement."""
    return edge_cut(graph, parts)
