"""From-scratch graph/mesh partitioning — the METIS substitute.

The paper distributes SDs across nodes with ``METIS_PartMeshDual``; this
package implements the same multilevel scheme (Karypis–Kumar):
heavy-edge-matching coarsening (:mod:`repro.partition.coarsen`), greedy
graph-growing initial bisection (:mod:`repro.partition.initial`),
Fiduccia–Mattheyses refinement (:mod:`repro.partition.refine`), and a
recursive-bisection k-way driver (:mod:`repro.partition.kway`).  Geometric
baselines (:mod:`repro.partition.geometric`) reproduce the paper's manual
1/2/4-node layouts and anchor the ablation benchmarks.
"""

from .coarsen import CoarseLevel, coarsen_level, contract, heavy_edge_matching
from .geometric import (block_partition, grid_blocks_for_k,
                        recursive_coordinate_bisection, strip_partition)
from .graph import Graph, graph_from_edges, grid_dual_graph
from .initial import best_bisection, grow_bisection, pseudo_peripheral_vertex
from .kway import multilevel_bisection, partition_graph, partition_sd_grid
from .metrics import (PartitionReport, boundary_vertices, edge_cut,
                      evaluate_partition, imbalance, num_parts_used,
                      part_weights, parts_are_contiguous)
from .placement import (apply_placement, part_affinity, rack_aware_mapping,
                        scattered_mapping)
from .refine import compute_gains, fm_refine_bisection
from .spectral import fiedler_vector, spectral_bisection, spectral_partition

__all__ = [
    "CoarseLevel", "coarsen_level", "contract", "heavy_edge_matching",
    "block_partition", "grid_blocks_for_k",
    "recursive_coordinate_bisection", "strip_partition",
    "Graph", "graph_from_edges", "grid_dual_graph",
    "best_bisection", "grow_bisection", "pseudo_peripheral_vertex",
    "multilevel_bisection", "partition_graph", "partition_sd_grid",
    "PartitionReport", "boundary_vertices", "edge_cut",
    "evaluate_partition", "imbalance", "num_parts_used",
    "part_weights", "parts_are_contiguous",
    "apply_placement", "part_affinity", "rack_aware_mapping",
    "scattered_mapping",
    "compute_gains", "fm_refine_bisection",
    "fiedler_vector", "spectral_bisection", "spectral_partition",
]
