"""Weighted undirected graphs in CSR form for mesh partitioning.

The paper partitions the **dual graph of the SD mesh** with METIS
(``METIS_PartMeshDual``): one vertex per sub-domain, an edge wherever two
SDs exchange ghost data.  This module provides the CSR graph container the
multilevel partitioner (:mod:`repro.partition.kway`) operates on, plus
builders for the structured grids used throughout the reproduction.

Design notes (following the numpy guide): adjacency is stored as two int64
arrays (``xadj``/``adjncy``) plus parallel weight arrays, so coarsening and
refinement sweep contiguous memory instead of chasing dict pointers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "grid_dual_graph", "graph_from_edges"]


class Graph:
    """Undirected graph in compressed sparse row (CSR) form.

    Attributes
    ----------
    xadj:
        int64 array of length ``n + 1``; vertex ``v``'s neighbours are
        ``adjncy[xadj[v]:xadj[v+1]]``.
    adjncy:
        int64 array of neighbour ids (each undirected edge appears twice).
    vwgt:
        float64 vertex weights (work per SD; the crack model makes these
        non-uniform).
    adjwgt:
        float64 edge weights (ghost-exchange volume between SDs).
    coords:
        optional ``(n, 2)`` float64 vertex coordinates, used by the
        geometric partitioners and by direction-uniform SD transfer.
    """

    def __init__(self, xadj: np.ndarray, adjncy: np.ndarray,
                 vwgt: Optional[np.ndarray] = None,
                 adjwgt: Optional[np.ndarray] = None,
                 coords: Optional[np.ndarray] = None) -> None:
        self.xadj = np.asarray(xadj, dtype=np.int64)
        self.adjncy = np.asarray(adjncy, dtype=np.int64)
        n = len(self.xadj) - 1
        if n < 0:
            raise ValueError("xadj must have at least one entry")
        if self.xadj[0] != 0 or self.xadj[-1] != len(self.adjncy):
            raise ValueError("xadj must start at 0 and end at len(adjncy)")
        if np.any(np.diff(self.xadj) < 0):
            raise ValueError("xadj must be non-decreasing")
        self.vwgt = (np.ones(n) if vwgt is None
                     else np.asarray(vwgt, dtype=np.float64))
        if len(self.vwgt) != n:
            raise ValueError(f"vwgt has length {len(self.vwgt)}, expected {n}")
        self.adjwgt = (np.ones(len(self.adjncy)) if adjwgt is None
                       else np.asarray(adjwgt, dtype=np.float64))
        if len(self.adjwgt) != len(self.adjncy):
            raise ValueError("adjwgt must parallel adjncy")
        if np.any(self.adjncy < 0) or (len(self.adjncy) and np.any(self.adjncy >= n)):
            raise ValueError("adjncy contains out-of-range vertex ids")
        self.coords = None if coords is None else np.asarray(coords, dtype=np.float64)
        if self.coords is not None and len(self.coords) != n:
            raise ValueError("coords must have one row per vertex")

    # -- basic queries -----------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.xadj) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.adjncy) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of vertex ``v`` (CSR slice view)."""
        return self.adjncy[self.xadj[v]:self.xadj[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors`."""
        return self.adjwgt[self.xadj[v]:self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        """Number of incident edges of ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def total_vertex_weight(self) -> float:
        """Sum of all vertex weights."""
        return float(self.vwgt.sum())

    def validate(self) -> None:
        """Check structural invariants (symmetry, no self-loops).

        Raises ``ValueError`` on violation.  O(E log E); intended for
        tests and for validating externally constructed graphs.
        """
        n = self.num_vertices
        fwd = set()
        for v in range(n):
            for u in self.neighbors(v):
                if u == v:
                    raise ValueError(f"self-loop at vertex {v}")
                fwd.add((v, int(u)))
        for (v, u) in fwd:
            if (u, v) not in fwd:
                raise ValueError(f"edge ({v},{u}) has no reverse")

    def connected_components(self) -> np.ndarray:
        """Label vertices by connected component (BFS); int64 array."""
        n = self.num_vertices
        labels = np.full(n, -1, dtype=np.int64)
        current = 0
        for seed in range(n):
            if labels[seed] != -1:
                continue
            stack = [seed]
            labels[seed] = current
            while stack:
                v = stack.pop()
                for u in self.neighbors(v):
                    if labels[u] == -1:
                        labels[u] = current
                        stack.append(int(u))
            current += 1
        return labels

    def is_connected(self) -> bool:
        """Whether the whole graph is a single component."""
        if self.num_vertices == 0:
            return True
        return bool(self.connected_components().max() == 0)

    def subgraph_is_connected(self, vertices: Sequence[int]) -> bool:
        """Whether the induced subgraph on ``vertices`` is connected.

        Used by the load balancer's contiguity checks (the paper insists
        SPs stay contiguous to keep the data exchange minimal).
        """
        vset = set(int(v) for v in vertices)
        if not vset:
            return True
        seed = next(iter(vset))
        seen = {seed}
        stack = [seed]
        while stack:
            v = stack.pop()
            for u in self.neighbors(v):
                ui = int(u)
                if ui in vset and ui not in seen:
                    seen.add(ui)
                    stack.append(ui)
        return len(seen) == len(vset)


def graph_from_edges(num_vertices: int,
                     edges: Iterable[Tuple[int, int]],
                     vwgt: Optional[Sequence[float]] = None,
                     edge_weights: Optional[Sequence[float]] = None,
                     coords: Optional[np.ndarray] = None) -> Graph:
    """Build a :class:`Graph` from an undirected edge list.

    Each edge ``(u, v)`` is stored in both directions.  Duplicate edges
    are merged with weights summed (this is what graph contraction needs).
    """
    edge_list = list(edges)
    if edge_weights is None:
        weights: List[float] = [1.0] * len(edge_list)
    else:
        weights = list(edge_weights)
        if len(weights) != len(edge_list):
            raise ValueError("edge_weights must parallel edges")
    merged: Dict[Tuple[int, int], float] = {}
    for (u, v), w in zip(edge_list, weights):
        if u == v:
            raise ValueError(f"self-loop ({u},{v}) not allowed")
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ValueError(f"edge ({u},{v}) out of range")
        key = (min(u, v), max(u, v))
        merged[key] = merged.get(key, 0.0) + float(w)

    adj: List[List[Tuple[int, float]]] = [[] for _ in range(num_vertices)]
    for (u, v), w in merged.items():
        adj[u].append((v, w))
        adj[v].append((u, w))
    xadj = np.zeros(num_vertices + 1, dtype=np.int64)
    adjncy = np.empty(2 * len(merged), dtype=np.int64)
    adjwgt = np.empty(2 * len(merged), dtype=np.float64)
    pos = 0
    for v in range(num_vertices):
        adj[v].sort()
        for (u, w) in adj[v]:
            adjncy[pos] = u
            adjwgt[pos] = w
            pos += 1
        xadj[v + 1] = pos
    return Graph(xadj, adjncy, vwgt=None if vwgt is None else np.asarray(vwgt),
                 adjwgt=adjwgt, coords=coords)


def grid_dual_graph(nx: int, ny: int,
                    vwgt: Optional[Sequence[float]] = None,
                    diagonal: bool = False) -> Graph:
    """Dual graph of an ``nx × ny`` SD grid (paper Fig. 2 geometry).

    Vertex ``v = iy * nx + ix`` represents the SD at column ``ix``, row
    ``iy``; 4-neighbour edges model the ghost exchange between adjacent
    SDs (when the SD edge length exceeds the horizon ε, only immediate
    neighbours communicate — the regime the paper works in).  With
    ``diagonal=True``, 8-neighbour adjacency is used, modelling the corner
    exchange needed when the ball at an SD corner pokes into the diagonal
    neighbour; corner edges get weight ``0.25`` to reflect the much
    smaller overlap area.

    Coordinates are SD centers on the unit square, used by geometric
    partitioners and the direction-uniform transfer policy.
    """
    if nx < 1 or ny < 1:
        raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
    edges: List[Tuple[int, int]] = []
    weights: List[float] = []
    for iy in range(ny):
        for ix in range(nx):
            v = iy * nx + ix
            if ix + 1 < nx:
                edges.append((v, v + 1))
                weights.append(1.0)
            if iy + 1 < ny:
                edges.append((v, v + nx))
                weights.append(1.0)
            if diagonal:
                if ix + 1 < nx and iy + 1 < ny:
                    edges.append((v, v + nx + 1))
                    weights.append(0.25)
                if ix > 0 and iy + 1 < ny:
                    edges.append((v, v + nx - 1))
                    weights.append(0.25)
    coords = np.empty((nx * ny, 2))
    for iy in range(ny):
        for ix in range(nx):
            coords[iy * nx + ix] = ((ix + 0.5) / nx, (iy + 0.5) / ny)
    return graph_from_edges(nx * ny, edges, vwgt=vwgt,
                            edge_weights=weights, coords=coords)
