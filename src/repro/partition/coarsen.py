"""Coarsening phase of the multilevel partitioner: heavy-edge matching.

Following Karypis & Kumar (the METIS paper, reference [7] of the paper we
reproduce): repeatedly contract a maximal matching that prefers heavy
edges, so that the edge weight hidden inside coarse vertices is maximized
and the cut exposed at the coarsest level is small.  Vertex weights add on
contraction; parallel edges merge with weights summed, so the coarse
graph's cut is exactly the fine graph's cut restricted to uncontracted
edges — the invariant the property tests assert.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .graph import Graph, graph_from_edges

__all__ = ["heavy_edge_matching", "contract", "CoarseLevel", "coarsen_level"]


def heavy_edge_matching(graph: Graph, rng: np.random.Generator) -> np.ndarray:
    """Compute a maximal matching preferring heavy edges.

    Vertices are visited in random order (METIS does the same to avoid
    pathological sweeps on structured grids); each unmatched vertex is
    matched with its heaviest unmatched neighbour, ties broken by smaller
    vertex id for determinism under a fixed seed.

    Returns ``match`` where ``match[v]`` is ``v``'s partner, or ``v``
    itself if unmatched.
    """
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        nbrs = graph.neighbors(v)
        wgts = graph.edge_weights(v)
        best_u = -1
        best_w = -np.inf
        for u, w in zip(nbrs, wgts):
            if match[u] != -1:
                continue
            if w > best_w or (w == best_w and u < best_u):
                best_w = float(w)
                best_u = int(u)
        if best_u == -1:
            match[v] = v  # stays single
        else:
            match[v] = best_u
            match[best_u] = v
    return match


def contract(graph: Graph, match: np.ndarray) -> Tuple[Graph, np.ndarray]:
    """Contract a matching into a coarse graph.

    Returns ``(coarse_graph, fine_to_coarse)`` where
    ``fine_to_coarse[v]`` is the coarse vertex containing fine vertex
    ``v``.  Coarse vertex weights are sums of their fine constituents;
    coarse coordinates (if present) are vertex-weight-weighted centroids
    so geometric transfer policies keep working on coarse graphs.
    """
    n = graph.num_vertices
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        partner = int(match[v])
        fine_to_coarse[v] = next_id
        if partner != v:
            fine_to_coarse[partner] = next_id
        next_id += 1

    coarse_vwgt = np.zeros(next_id)
    np.add.at(coarse_vwgt, fine_to_coarse, graph.vwgt)

    edges: List[Tuple[int, int]] = []
    weights: List[float] = []
    for v in range(n):
        cv = int(fine_to_coarse[v])
        for u, w in zip(graph.neighbors(v), graph.edge_weights(v)):
            cu = int(fine_to_coarse[u])
            if cv < cu:  # visit each fine edge once, drop contracted pairs
                edges.append((cv, cu))
                weights.append(float(w))

    coords = None
    if graph.coords is not None:
        coords = np.zeros((next_id, 2))
        np.add.at(coords, fine_to_coarse,
                  graph.coords * graph.vwgt[:, None])
        coords /= np.maximum(coarse_vwgt, 1e-300)[:, None]

    coarse = graph_from_edges(next_id, edges, vwgt=coarse_vwgt,
                              edge_weights=weights, coords=coords)
    return coarse, fine_to_coarse


class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    graph:
        The coarse graph at this level.
    fine_to_coarse:
        Projection map from the previous (finer) level's vertex ids.
    """

    def __init__(self, graph: Graph, fine_to_coarse: np.ndarray) -> None:
        self.graph = graph
        self.fine_to_coarse = fine_to_coarse


def coarsen_level(graph: Graph, rng: np.random.Generator) -> Optional[CoarseLevel]:
    """Run one matching + contraction step.

    Returns ``None`` when coarsening stalls (matching shrinks the graph
    by less than 10%), which is the standard METIS stopping criterion —
    without it, graphs with many isolated vertices loop forever.
    """
    match = heavy_edge_matching(graph, rng)
    coarse, fine_to_coarse = contract(graph, match)
    if coarse.num_vertices > 0.9 * graph.num_vertices:
        return None
    return CoarseLevel(coarse, fine_to_coarse)
