"""Geometric baseline partitioners: blocks, strips, coordinate bisection.

The paper's distributed experiments (Sec. 8.3) describe a manual scheme
for 1/2/4 nodes — "divided into 2 equal sized halves", "4 equal sized
squares" — before switching to METIS for Fig. 13.  These geometric
partitioners reproduce that manual scheme, provide the baselines the
partitioner ablation (Abl. A) compares against, and serve as cheap
fallbacks for rectangular SD grids.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .graph import Graph

__all__ = ["strip_partition", "block_partition", "recursive_coordinate_bisection",
           "grid_blocks_for_k"]


def strip_partition(nx: int, ny: int, k: int, axis: int = 0) -> np.ndarray:
    """Split the SD grid into ``k`` contiguous strips along ``axis``.

    ``axis=0`` cuts vertical strips (columns grouped), ``axis=1``
    horizontal.  Strip sizes differ by at most one column/row.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    n_lines = nx if axis == 0 else ny
    # boundaries of nearly equal chunks
    cuts = np.linspace(0, n_lines, k + 1).round().astype(np.int64)
    line_part = np.zeros(n_lines, dtype=np.int64)
    for p in range(k):
        line_part[cuts[p]:cuts[p + 1]] = p
    parts = np.empty(nx * ny, dtype=np.int64)
    for iy in range(ny):
        for ix in range(nx):
            parts[iy * nx + ix] = line_part[ix if axis == 0 else iy]
    return parts


def grid_blocks_for_k(k: int) -> Tuple[int, int]:
    """Factor ``k`` into the most square ``(kx, ky)`` block layout."""
    best = (k, 1)
    for kx in range(1, int(np.sqrt(k)) + 1):
        if k % kx == 0:
            best = (k // kx, kx)
    return best


def block_partition(nx: int, ny: int, k: int) -> np.ndarray:
    """Split the SD grid into a ``kx × ky`` block layout (``kx*ky = k``).

    For k=4 on a square grid this reproduces the paper's "4 equal sized
    squares, each assigned to distinct computational nodes".
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    kx, ky = grid_blocks_for_k(k)
    cuts_x = np.linspace(0, nx, kx + 1).round().astype(np.int64)
    cuts_y = np.linspace(0, ny, ky + 1).round().astype(np.int64)
    col_block = np.zeros(nx, dtype=np.int64)
    row_block = np.zeros(ny, dtype=np.int64)
    for b in range(kx):
        col_block[cuts_x[b]:cuts_x[b + 1]] = b
    for b in range(ky):
        row_block[cuts_y[b]:cuts_y[b + 1]] = b
    parts = np.empty(nx * ny, dtype=np.int64)
    for iy in range(ny):
        for ix in range(nx):
            parts[iy * nx + ix] = row_block[iy] * kx + col_block[ix]
    return parts


def recursive_coordinate_bisection(graph: Graph, k: int) -> np.ndarray:
    """Recursive coordinate bisection (RCB) on vertex coordinates.

    Splits along the longer extent at the weighted median, recursively.
    Needs ``graph.coords``; used as the strongest geometric baseline in
    the partitioner ablation.
    """
    if graph.coords is None:
        raise ValueError("RCB requires vertex coordinates")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    parts = np.zeros(n, dtype=np.int64)
    _rcb(graph.coords, graph.vwgt, np.arange(n, dtype=np.int64), k, 0, parts)
    return parts


def _rcb(coords: np.ndarray, vwgt: np.ndarray, idx: np.ndarray,
         k: int, first: int, parts: np.ndarray) -> None:
    if k == 1 or len(idx) == 0:
        parts[idx] = first
        return
    k_left = k // 2
    frac = k_left / k
    pts = coords[idx]
    extent = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(extent))
    order = idx[np.argsort(pts[:, axis], kind="stable")]
    cum = np.cumsum(vwgt[order])
    total = cum[-1]
    split = int(np.searchsorted(cum, frac * total))
    split = min(max(split, 1), len(order) - 1) if len(order) > 1 else len(order)
    _rcb(coords, vwgt, order[:split], k_left, first, parts)
    _rcb(coords, vwgt, order[split:], k - k_left, first + k_left, parts)
