"""Command-line interface: ``python -m repro <command>``.

Commands map to the library's main entry points so the paper's
experiments can be rerun without writing a script:

* ``validate``  — the Fig. 8 convergence sweep (error vs h);
* ``solve``     — one manufactured-problem solve with error report;
* ``scale``     — a strong-scaling sweep on the simulated cluster;
* ``balance``   — the Fig. 14 iterated balancing demo;
* ``partition`` — partition an SD grid and print quality metrics;
* ``run``       — any registered scenario by name (``run --list``);
* ``serve``     — a multi-tenant solve-service scenario (open-loop
  arrival streams, admission control, latency/goodput telemetry).

Every command constructs its runs through the declarative experiment
engine (:mod:`repro.experiments`): a named registry scenario is built,
optionally overridden from the flags, executed by the runner (sweeps go
through the process-parallel ``run_sweep``), and the structured
:class:`RunRecord` results can be written with ``--json <path>``.
Text output is plain tables via :mod:`repro.reporting`.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for testability)."""
    from .core.strategies import strategy_names
    from .costmodel import cost_model_names
    from .solver.backends import backend_names
    p = argparse.ArgumentParser(
        prog="repro",
        description="Nonlocal-model load balancing reproduction (IPPS 2021)")
    sub = p.add_subparsers(dest="command", required=True)

    def add_json(sp):
        sp.add_argument("--json", metavar="PATH", default=None,
                        help="write structured RunRecord results to PATH")

    def add_backend(sp):
        sp.add_argument("--backend", choices=["auto"] + backend_names(),
                        default=None,
                        help="kernel backend for the operator applies "
                             "(default: the scenario's choice, normally "
                             "'auto' = radius heuristic; env "
                             "REPRO_KERNEL_BACKEND overrides 'auto')")

    def add_balancer(sp):
        sp.add_argument("--balancer", choices=["auto"] + strategy_names(),
                        default=None,
                        help="load-balancing strategy (default: the "
                             "scenario's choice, normally 'auto' = the "
                             "paper's tree algorithm; env REPRO_BALANCER "
                             "overrides 'auto')")

    def add_cost_model(sp):
        sp.add_argument("--cost-model", choices=["auto"] + cost_model_names(),
                        default=None, dest="cost_model",
                        help="task-cost model pricing simulated task "
                             "times (default: the scenario's choice, "
                             "normally 'auto' = the seed's flat "
                             "arithmetic; 'hierarchy' makes block shape "
                             "and backend matter; env REPRO_COST_MODEL "
                             "overrides 'auto')")

    def add_topology(sp):
        from .amt.topology import topology_names
        sp.add_argument("--topology", choices=topology_names(),
                        default=None,
                        help="network topology for the simulated cluster "
                             "(default: the scenario's choice, normally "
                             "the legacy flat network; 'switched' and "
                             "'hierarchical' use default rack parameters "
                             "— pin TopologySpec in a scenario for more)")

    v = sub.add_parser("validate", help="Fig. 8 convergence sweep")
    v.add_argument("--max-exponent", type=int, default=6,
                   help="finest mesh is 2^N (default 6)")
    v.add_argument("--steps", type=int, default=10)
    v.add_argument("--jobs", type=int, default=1,
                   help="process-parallel sweep workers (default serial)")
    add_json(v)

    s = sub.add_parser("solve", help="one manufactured solve")
    s.add_argument("--nx", type=int, default=64)
    s.add_argument("--eps-factor", type=float, default=8.0)
    s.add_argument("--steps", type=int, default=20)
    s.add_argument("--source", choices=("continuum", "discrete"),
                   default="continuum")
    add_backend(s)
    add_json(s)

    c = sub.add_parser("scale", help="strong scaling on the simulated cluster")
    c.add_argument("--mesh", type=int, default=400)
    c.add_argument("--sds", type=int, default=8, help="SDs per axis")
    c.add_argument("--max-nodes", type=int, default=8)
    c.add_argument("--steps", type=int, default=20)
    c.add_argument("--seed", type=int, default=0,
                   help="partitioner seed")
    c.add_argument("--jobs", type=int, default=1,
                   help="process-parallel sweep workers (default serial)")
    add_backend(c)
    add_balancer(c)
    add_topology(c)
    add_cost_model(c)
    add_json(c)

    b = sub.add_parser("balance", help="Fig. 14 iterated balancing demo")
    b.add_argument("--sds", type=int, default=5, help="SDs per axis")
    b.add_argument("--nodes", type=int, default=4)
    b.add_argument("--iterations", type=int, default=3)
    add_balancer(b)
    add_json(b)

    g = sub.add_parser("partition", help="partition an SD grid")
    g.add_argument("--sds", type=int, default=16, help="SDs per axis")
    g.add_argument("--nodes", type=int, default=4)
    g.add_argument("--method", choices=("multilevel", "blocks", "strips",
                                        "rcb", "spectral"),
                   default="multilevel")
    g.add_argument("--seed", type=int, default=0,
                   help="multilevel partitioner seed")
    add_json(g)

    r = sub.add_parser("run", help="run a registered scenario by name")
    r.add_argument("--scenario", metavar="NAME", default=None,
                   help="registry name (see --list)")
    r.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="list registered scenario names and exit")
    r.add_argument("--steps", type=int, default=None,
                   help="override the scenario's timestep count")
    r.add_argument("--seed", type=int, default=None,
                   help="override the scenario's seed (where supported)")
    r.add_argument("--faults", metavar="SPEC", default=None,
                   help="overlay a churn schedule on the scenario's "
                        "cluster: inline JSON ('{\"events\": [...]}') or "
                        "a path to a JSON file in FaultSpec form "
                        "(events with kind fail/join/straggle at virtual "
                        "times, plus recovery_penalty)")
    add_backend(r)
    add_balancer(r)
    add_topology(r)
    add_cost_model(r)
    add_json(r)

    e = sub.add_parser("serve",
                       help="multi-tenant solve service on the "
                            "simulated cluster")
    e.add_argument("--scenario", metavar="NAME", default="service_poisson",
                   help="a service_* registry scenario "
                        "(default service_poisson; see --list)")
    e.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="list service scenario names and exit")
    e.add_argument("--rate", type=float, default=None,
                   help="override the aggregate offered load (jobs per "
                        "virtual second)")
    e.add_argument("--horizon", type=float, default=None,
                   help="override the service window (virtual seconds)")
    e.add_argument("--seed", type=int, default=None,
                   help="override the arrival-trace seed")
    e.add_argument("--nodes", type=int, default=None,
                   help="override the cluster size")
    e.add_argument("--autoscale", action="store_true",
                   help="close the loop on fleet sizing: attach the "
                        "default telemetry-driven autoscale policy "
                        "(target-utilization with hysteresis) to a "
                        "scenario that does not already carry one, and "
                        "print the scale-events table; scenarios like "
                        "flash_crowd autoscale by default")
    add_cost_model(e)
    e.add_argument("--profile", action="store_true",
                   help="enable DES profiling (REPRO_DES_PROFILE) and "
                        "print the per-event-class timing table after "
                        "the summary")
    add_json(e)
    return p


def _parse_faults(arg: str):
    """``--faults``: inline JSON if it looks like an object, else a path."""
    import json
    from .experiments import FaultSpec
    text = arg
    if not arg.lstrip().startswith("{"):
        try:
            with open(arg, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise SystemExit(f"error: cannot read faults file {arg}: {exc}")
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"error: --faults is not valid JSON: {exc}")
    try:
        return FaultSpec.from_dict(doc)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"error: bad fault schedule: {exc}")


def _apply_overrides(spec, args):
    """The spec with the CLI's --backend/--balancer/--topology/
    --cost-model/--faults overrides."""
    if getattr(args, "backend", None):
        spec = spec.replace(kernel_backend=args.backend)
    if getattr(args, "cost_model", None):
        spec = spec.replace(cost_model=args.cost_model)
    if getattr(args, "balancer", None):
        spec = spec.with_balancer(args.balancer)
    if getattr(args, "topology", None):
        spec = spec.with_topology(args.topology)
    if getattr(args, "faults", None):
        from dataclasses import replace as _replace
        try:
            spec = spec.replace(cluster=_replace(
                spec.cluster, faults=_parse_faults(args.faults)))
        except ValueError as exc:  # membership validation
            raise SystemExit(f"error: bad fault schedule: {exc}")
    return spec


def _write_records(path: Optional[str], records) -> None:
    if path:
        from .experiments import write_records
        try:
            write_records(path, list(records))
        except OSError as exc:
            raise SystemExit(f"error: cannot write {path}: {exc}") from exc
        print(f"\nwrote {len(records)} record(s) to {path}")


def _cmd_validate(args) -> int:
    from .experiments import build, run_sweep
    from .reporting.tables import print_series
    exponents = list(range(2, args.max_exponent + 1))
    specs = [build("fig08_convergence", exponent=n, steps=args.steps)
             for n in exponents]
    records = run_sweep(specs, serial=args.jobs <= 1, max_workers=args.jobs)
    hs = [1.0 / (2 ** n) for n in exponents]
    errors = [rec.total_error for rec in records]
    print_series("h", hs, {"total error e": errors},
                 title="Convergence validation (paper Fig. 8)")
    ok = all(b < a for a, b in zip(errors, errors[1:]))
    print(f"\nmonotone decrease: {'yes' if ok else 'NO'}")
    _write_records(args.json, records)
    return 0 if ok else 1


def _cmd_solve(args) -> int:
    from .experiments import build, run_scenario
    spec = _apply_overrides(
        build("solve_serial", nx=args.nx, eps_factor=args.eps_factor,
              steps=args.steps, source_mode=args.source), args)
    rec = run_scenario(spec)
    eps = args.eps_factor / args.nx
    print(f"mesh {args.nx}x{args.nx}, eps = {eps:.4g}, "
          f"dt = {rec.dt:.3e}, steps = {args.steps}")
    print(f"total error e = {rec.total_error:.4e}")
    print(f"final-step error e_N = {rec.errors[-1]:.4e}")
    _write_records(args.json, [rec])
    return 0


def _cmd_scale(args) -> int:
    from .experiments import build, run_sweep
    from .reporting.tables import print_series
    node_counts = [n for n in (1, 2, 4, 8, 12, 16, 24, 32)
                   if n <= min(args.max_nodes, args.sds * args.sds)]
    specs = [_apply_overrides(
                 build("scale_strong", mesh=args.mesh, sd_axis=args.sds,
                       nodes=n, steps=args.steps, seed=args.seed), args)
             for n in node_counts]
    records = run_sweep(specs, serial=args.jobs <= 1, max_workers=args.jobs)
    times = [rec.makespan for rec in records]
    speedups = [times[0] / t for t in times]
    print_series("#nodes", node_counts,
                 {"speedup": speedups,
                  "optimal": [float(n) for n in node_counts]},
                 title=f"Strong scaling (mesh {args.mesh}^2, "
                       f"{args.sds}x{args.sds} SDs, eps=8h)")
    _write_records(args.json, records)
    return 0


def _cmd_balance(args) -> int:
    from .experiments import build, ownership_timeline, run_scenario
    from .reporting.ownership import render_ownership_sequence
    k = args.nodes
    spec = _apply_overrides(
        build("fig14_load_balance", sd_axis=args.sds, nodes=k,
              steps=args.iterations), args)
    rec = run_scenario(spec)
    sd_grid = spec.mesh.build_sd_grid()
    snapshots = ownership_timeline(spec, rec)
    print(render_ownership_sequence(
        sd_grid, snapshots,
        labels=[f"iter {i}" for i in range(len(snapshots))]))
    counts = np.bincount(rec.final_parts, minlength=k)
    print(f"\nfinal SDs per node: {[int(c) for c in counts]}")
    spread = int(counts.max() - counts.min())
    print(f"max-min spread: {spread}")
    _write_records(args.json, [rec])
    return 0 if spread <= 2 else 1


def _cmd_partition(args) -> int:
    from .experiments import PartitionSpec, write_json
    from .partition.graph import grid_dual_graph
    from .partition.metrics import evaluate_partition
    from .reporting.ownership import render_ownership
    from .mesh.subdomain import SubdomainGrid
    sds, k = args.sds, args.nodes
    method = "metis" if args.method == "multilevel" else args.method
    pspec = PartitionSpec(method=method, seed=args.seed)
    parts = pspec.build(sds, sds, k)
    graph = grid_dual_graph(sds, sds)
    rep = evaluate_partition(graph, parts, k)
    sd_grid = SubdomainGrid(4 * sds, 4 * sds, sds, sds)
    print(render_ownership(sd_grid, parts,
                           title=f"{args.method} partition, k={k}:"))
    print(f"\nedge cut: {rep.cut:g}   imbalance: {rep.imbalance:.3f}   "
          f"contiguous: {rep.contiguous}")
    if args.json:
        try:
            write_json(args.json, {
                "partition": pspec.to_dict(),
                "sds_per_axis": sds, "num_nodes": k,
                "parts": [int(p) for p in parts],
                "edge_cut": float(rep.cut),
                "imbalance": float(rep.imbalance),
                "contiguous": bool(rep.contiguous),
            })
        except OSError as exc:
            raise SystemExit(
                f"error: cannot write {args.json}: {exc}") from exc
        print(f"\nwrote partition report to {args.json}")
    return 0


def _run_balancer_ablation(args, overrides) -> int:
    """``run --scenario abl_balancers`` without a pinned ``--balancer``:
    one point per registered strategy, compared side by side."""
    from .experiments import balancer_sweep, run_sweep
    from .reporting.tables import print_table
    specs = [_apply_overrides(s, args) for s in balancer_sweep(**overrides)]
    records = run_sweep(specs, serial=True)
    rows = [[rec.spec["policy"]["balancer"], rec.makespan * 1e3,
             rec.sds_moved, rec.migration_bytes,
             rec.imbalance_history[-1] if rec.imbalance_history else 1.0]
            for rec in records]
    print_table(["strategy", "makespan (ms)", "SDs moved",
                 "migration bytes", "final imbalance"],
                rows, title="Balancer-strategy ablation (hetero_drift "
                            "workload, balancing every step)")
    _write_records(args.json, records)
    return 0


def _cmd_run(args) -> int:
    from .experiments import build, get_factory, run_scenario, scenario_names
    from .reporting.balance import (format_balance_events,
                                    format_bytes_by_class,
                                    format_recovery_events)
    if args.list_scenarios:
        for name in scenario_names():
            print(name)
        return 0
    if not args.scenario:
        print("run: provide --scenario NAME (or --list)", file=sys.stderr)
        return 2
    try:
        factory = get_factory(args.scenario)
    except KeyError as exc:
        print(f"run: {exc.args[0]}", file=sys.stderr)
        return 2
    accepted = inspect.signature(factory).parameters
    overrides = {}
    if args.steps is not None and "steps" in accepted:
        overrides["steps"] = args.steps
    if args.seed is not None and "seed" in accepted:
        overrides["seed"] = args.seed
    if args.scenario == "abl_balancers" and not args.balancer:
        return _run_balancer_ablation(args, overrides)
    spec = _apply_overrides(build(args.scenario, **overrides), args)
    rec = run_scenario(spec)
    print(f"scenario: {spec.name} ({rec.solver}, {rec.num_steps} steps)")
    if spec.kernel_backend != "auto":
        print(f"kernel backend: {spec.kernel_backend}")
    if rec.cost_model_resolved not in ("", "flat"):
        print(f"cost model: {rec.cost_model_resolved}")
    if rec.solver == "distributed" and spec.policy.balancer != "auto":
        print(f"balancer: {spec.policy.balancer}")
    if rec.solver == "distributed":
        print(f"virtual makespan: {rec.makespan * 1e3:.3f} ms")
        print(f"ghost bytes: {rec.ghost_bytes:,}   "
              f"migration bytes: {rec.migration_bytes:,}   "
              f"SDs moved: {rec.sds_moved}")
        if len(rec.bytes_by_class) > 1:
            # multiple route classes: a topology is differentiating
            # the traffic — show where the bytes went
            print(format_bytes_by_class(rec.bytes_by_class))
        if rec.imbalance_history:
            print(f"imbalance max/mean: first {rec.imbalance_history[0]:.3f}"
                  f" -> last {rec.imbalance_history[-1]:.3f}")
        if rec.recovery_events:
            print(f"recovery bytes: {rec.recovery_bytes:,}")
            print()
            print(format_recovery_events(rec.recovery_events))
        if rec.balance_events:
            print()
            print(format_balance_events(rec.balance_events))
    if rec.total_error is not None:
        print(f"total error e = {rec.total_error:.4e}")
    _write_records(args.json, [rec])
    return 0


def _cmd_serve(args) -> int:
    from .experiments import build, get_factory, scenario_names
    from .reporting.service import (format_scale_events,
                                    format_service_summary,
                                    format_tenant_table)
    from .service import (AutoscaleSpec, run_service_detailed,
                          summarize_record)
    if args.list_scenarios:
        for name in scenario_names():
            # service scenarios are the ones whose spec dispatches to
            # the service runner (covers flash_crowd etc., which do not
            # carry the service_ name prefix)
            if getattr(build(name), "solver", None) == "service":
                print(name)
        return 0
    try:
        factory = get_factory(args.scenario)
    except KeyError as exc:
        print(f"serve: {exc.args[0]}", file=sys.stderr)
        return 2
    accepted = inspect.signature(factory).parameters
    overrides = {}
    for flag in ("rate", "horizon", "seed", "nodes"):
        value = getattr(args, flag)
        if value is not None:
            if flag not in accepted:
                print(f"serve: scenario {args.scenario!r} does not "
                      f"accept --{flag}", file=sys.stderr)
                return 2
            overrides[flag] = value
    spec = build(args.scenario, **overrides)
    if getattr(spec, "solver", None) != "service":
        print(f"serve: {args.scenario!r} is not a service scenario "
              f"(use 'repro run')", file=sys.stderr)
        return 2
    if getattr(args, "cost_model", None):
        spec = spec.replace(cost_model=args.cost_model)
    if args.autoscale and spec.autoscale is None:
        # bound by the current fleet on the low side so the policy can
        # shed idle capacity, twice the fleet on the high side
        spec = spec.replace(autoscale=AutoscaleSpec(
            min_nodes=max(1, spec.cluster.num_nodes // 2),
            max_nodes=2 * spec.cluster.num_nodes))
    if args.profile:
        # the env flag (not a Simulator kwarg) so any nested DES the
        # run builds inherits it, matching bench_des_core's contract
        os.environ["REPRO_DES_PROFILE"] = "1"
    rec, cluster = run_service_detailed(spec)
    summary = summarize_record(rec)
    if spec.autoscale is not None:
        fleet = (f"{spec.cluster.num_nodes} nodes, autoscaling in "
                 f"[{spec.autoscale.min_nodes}, "
                 f"{spec.autoscale.max_nodes}]")
    else:
        fleet = f"{spec.cluster.num_nodes} nodes"
    print(f"scenario: {spec.name} ({len(spec.tenants)} tenants, "
          f"{fleet}, {spec.arrival.process} arrivals)")
    print(format_service_summary(summary))
    print()
    print(format_tenant_table(summary))
    if spec.autoscale is not None:
        from .amt.autoscale import node_seconds
        used = node_seconds(rec.scale_events, spec.cluster.num_nodes,
                            spec.horizon)
        static = spec.cluster.num_nodes * spec.horizon
        print()
        print(f"provisioned node-seconds: {used:.4g} "
              f"(static {spec.cluster.num_nodes}-node fleet: "
              f"{static:.4g})")
        if rec.scale_events:
            print()
            print(format_scale_events(rec.scale_events))
    if args.profile:
        print()
        print(f"DES events processed: {cluster.sim.events_processed}")
        print(cluster.sim.profile_report())
    _write_records(args.json, [rec])
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from .amt.des import requested_queue
    from .core.strategies import requested_strategy
    from .costmodel import requested_cost_model
    from .solver.backends import requested_backend
    try:
        requested_backend()      # a bad REPRO_KERNEL_BACKEND (or
        requested_strategy()     # REPRO_BALANCER, REPRO_DES_QUEUE,
        requested_queue()        # REPRO_COST_MODEL) fails every
        requested_cost_model()   # command; report it
    except ValueError as exc:  # without a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    handlers = {
        "validate": _cmd_validate,
        "solve": _cmd_solve,
        "scale": _cmd_scale,
        "balance": _cmd_balance,
        "partition": _cmd_partition,
        "run": _cmd_run,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
