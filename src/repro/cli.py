"""Command-line interface: ``python -m repro <command>``.

Commands map to the library's main entry points so the paper's
experiments can be rerun without writing a script:

* ``validate``  — the Fig. 8 convergence sweep (error vs h);
* ``solve``     — one manufactured-problem solve with error report;
* ``scale``     — a strong-scaling sweep on the simulated cluster;
* ``balance``   — the Fig. 14 iterated balancing demo;
* ``partition`` — partition an SD grid and print quality metrics.

All output is plain text via :mod:`repro.reporting`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for testability)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Nonlocal-model load balancing reproduction (IPPS 2021)")
    sub = p.add_subparsers(dest="command", required=True)

    v = sub.add_parser("validate", help="Fig. 8 convergence sweep")
    v.add_argument("--max-exponent", type=int, default=6,
                   help="finest mesh is 2^N (default 6)")
    v.add_argument("--steps", type=int, default=10)

    s = sub.add_parser("solve", help="one manufactured solve")
    s.add_argument("--nx", type=int, default=64)
    s.add_argument("--eps-factor", type=float, default=8.0)
    s.add_argument("--steps", type=int, default=20)
    s.add_argument("--source", choices=("continuum", "discrete"),
                   default="continuum")

    c = sub.add_parser("scale", help="strong scaling on the simulated cluster")
    c.add_argument("--mesh", type=int, default=400)
    c.add_argument("--sds", type=int, default=8, help="SDs per axis")
    c.add_argument("--max-nodes", type=int, default=8)
    c.add_argument("--steps", type=int, default=20)

    b = sub.add_parser("balance", help="Fig. 14 iterated balancing demo")
    b.add_argument("--sds", type=int, default=5, help="SDs per axis")
    b.add_argument("--nodes", type=int, default=4)
    b.add_argument("--iterations", type=int, default=3)

    g = sub.add_parser("partition", help="partition an SD grid")
    g.add_argument("--sds", type=int, default=16, help="SDs per axis")
    g.add_argument("--nodes", type=int, default=4)
    g.add_argument("--method", choices=("multilevel", "blocks", "strips",
                                        "rcb", "spectral"),
                   default="multilevel")
    return p


def _cmd_validate(args) -> int:
    from .reporting.tables import print_series
    from .solver.serial import solve_manufactured
    hs, errors = [], []
    for n in range(2, args.max_exponent + 1):
        nx = 2 ** n
        res = solve_manufactured(nx, eps_factor=2, num_steps=args.steps,
                                 dt=0.05 / (nx * nx), source_mode="continuum")
        hs.append(1.0 / nx)
        errors.append(res.total_error)
    print_series("h", hs, {"total error e": errors},
                 title="Convergence validation (paper Fig. 8)")
    ok = all(b < a for a, b in zip(errors, errors[1:]))
    print(f"\nmonotone decrease: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


def _cmd_solve(args) -> int:
    from .mesh.grid import UniformGrid
    from .solver.exact import ManufacturedProblem
    from .solver.model import NonlocalHeatModel
    from .solver.serial import SerialSolver
    grid = UniformGrid(args.nx, args.nx)
    model = NonlocalHeatModel(epsilon=args.eps_factor * grid.h)
    prob = ManufacturedProblem(model, grid, source_mode=args.source)
    solver = SerialSolver(model, grid, source=prob.source)
    res = solver.run(prob.initial_condition(), args.steps, exact=prob.exact)
    print(f"mesh {args.nx}x{args.nx}, eps = {model.epsilon:.4g}, "
          f"dt = {solver.dt:.3e}, steps = {args.steps}")
    print(f"total error e = {res.total_error:.4e}")
    print(f"final-step error e_N = {res.errors[-1]:.4e}")
    return 0


def _cmd_scale(args) -> int:
    from .reporting.tables import print_series
    from .mesh.grid import UniformGrid
    from .mesh.subdomain import SubdomainGrid
    from .partition.kway import partition_sd_grid
    from .solver.distributed import DistributedSolver
    from .solver.model import NonlocalHeatModel
    grid = UniformGrid(args.mesh, args.mesh)
    model = NonlocalHeatModel(epsilon=8 * grid.h)
    sd_grid = SubdomainGrid(args.mesh, args.mesh, args.sds, args.sds)
    node_counts = [n for n in (1, 2, 4, 8, 12, 16, 24, 32)
                   if n <= min(args.max_nodes, args.sds * args.sds)]
    times = []
    for n in node_counts:
        parts = partition_sd_grid(args.sds, args.sds, n, seed=0)
        solver = DistributedSolver(model, grid, sd_grid, parts, num_nodes=n,
                                   compute_numerics=False)
        times.append(solver.run(None, args.steps).makespan)
    speedups = [times[0] / t for t in times]
    print_series("#nodes", node_counts,
                 {"speedup": speedups,
                  "optimal": [float(n) for n in node_counts]},
                 title=f"Strong scaling (mesh {args.mesh}^2, "
                       f"{args.sds}x{args.sds} SDs, eps=8h)")
    return 0


def _cmd_balance(args) -> int:
    from .core.balancer import LoadBalancer
    from .mesh.subdomain import SubdomainGrid
    from .reporting.ownership import render_ownership_sequence
    k = args.nodes
    sds = args.sds
    sd_grid = SubdomainGrid(4 * sds, 4 * sds, sds, sds)
    lb = LoadBalancer(sd_grid)
    parts = np.zeros(sds * sds, dtype=np.int64)
    for i in range(1, k):  # one corner-ish SD per other node
        parts[sds * sds - i] = i
    snapshots = [parts.copy()]
    for _ in range(args.iterations):
        busy = np.maximum(
            np.bincount(parts, minlength=k).astype(float), 1e-9)
        parts = lb.balance_step(parts, k, busy).parts_after
        snapshots.append(parts.copy())
    print(render_ownership_sequence(
        sd_grid, snapshots,
        labels=[f"iter {i}" for i in range(len(snapshots))]))
    counts = np.bincount(parts, minlength=k)
    print(f"\nfinal SDs per node: {list(counts)}")
    spread = int(counts.max() - counts.min())
    print(f"max-min spread: {spread}")
    return 0 if spread <= 2 else 1


def _cmd_partition(args) -> int:
    from .partition.geometric import (block_partition,
                                      recursive_coordinate_bisection,
                                      strip_partition)
    from .partition.graph import grid_dual_graph
    from .partition.kway import partition_graph
    from .partition.metrics import evaluate_partition
    from .partition.spectral import spectral_partition
    from .reporting.ownership import render_ownership
    from .mesh.subdomain import SubdomainGrid
    sds, k = args.sds, args.nodes
    graph = grid_dual_graph(sds, sds)
    if args.method == "multilevel":
        parts = partition_graph(graph, k, seed=0)
    elif args.method == "blocks":
        parts = block_partition(sds, sds, k)
    elif args.method == "strips":
        parts = strip_partition(sds, sds, k)
    elif args.method == "rcb":
        parts = recursive_coordinate_bisection(graph, k)
    else:
        parts = spectral_partition(graph, k)
    rep = evaluate_partition(graph, parts, k)
    sd_grid = SubdomainGrid(4 * sds, 4 * sds, sds, sds)
    print(render_ownership(sd_grid, parts,
                           title=f"{args.method} partition, k={k}:"))
    print(f"\nedge cut: {rep.cut:g}   imbalance: {rep.imbalance:.3f}   "
          f"contiguous: {rep.contiguous}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "validate": _cmd_validate,
        "solve": _cmd_solve,
        "scale": _cmd_scale,
        "balance": _cmd_balance,
        "partition": _cmd_partition,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
