"""Vectorized nonlocal operator kernels.

The spatially discrete right-hand side of eq. (5) is, for DP ``i``,

    L(u)_i = c * V * [ (W ⊛ u)_i  -  S * u_i ]

where ``W`` is the stencil mask (``J`` weights), ``S = sum(W)`` and ``V``
the cell volume — the zero condition on ``Dc`` is exactly zero-extension
of ``u`` outside the array, which convolution with zero padding
implements natively.

:class:`NonlocalOperator` is the solver-facing object: it owns the
stencil and the prefactor and delegates the actual arithmetic to a
pluggable *kernel backend* (:mod:`repro.solver.backends`) — dense
convolution, precomputed-FFT, or cached sparse matvec — selected by
name (default ``"auto"``: radius heuristic, overridable via the
``REPRO_KERNEL_BACKEND`` environment variable).  It exposes
:meth:`~NonlocalOperator.apply` for the full grid and
:meth:`~NonlocalOperator.apply_block` for SD-local application on a
padded (ghost-augmented) block.

:func:`assemble_sparse_operator` remains the slow, loop-based explicit
matrix used in tests to cross-validate every backend entry by entry.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..mesh.grid import UniformGrid
from ..mesh.stencil import NonlocalStencil, build_stencil
from .backends import KernelBackend, make_backend
from .model import NonlocalHeatModel

__all__ = ["NonlocalOperator", "assemble_sparse_operator",
           "check_operator_matches", "stable_dt"]


def check_operator_matches(operator: "NonlocalOperator",
                           model: NonlocalHeatModel,
                           grid: UniformGrid) -> None:
    """Reject a prebuilt operator that was assembled for different physics.

    Solvers accepting an injected operator call this: identity with the
    solver's own model/grid is the common (cache) case; otherwise every
    ingredient of the assembly — grid shape, horizon, diffusivity,
    influence function, dimension — must agree, or the solver would
    silently integrate a different equation.
    """
    if operator.model is model and operator.grid is grid:
        return
    if operator.grid.shape != grid.shape:
        raise ValueError(
            f"operator built for grid {operator.grid.shape}, "
            f"solver grid is {grid.shape}")
    om = operator.model
    if (om.epsilon != model.epsilon or om.kappa != model.kappa
            or om.dim != model.dim
            or om.influence is not model.influence):
        raise ValueError(
            f"operator built for model {om!r}, solver model is {model!r}")


class NonlocalOperator:
    """Applies ``L(u) = c V (W ⊛ u - S u)`` on a uniform grid.

    Parameters
    ----------
    model:
        The continuum model (supplies ``c``, ``eps``, ``J``).
    grid:
        The discretization (supplies ``h``, cell volume, shape).
    stencil:
        Optional precomputed stencil; built from the model/grid if
        omitted.
    backend:
        Kernel backend choice: a registered name (``"direct"``,
        ``"fft"``, ``"sparse"``), ``"auto"`` (radius heuristic, env
        overridable — the default), or a prebuilt
        :class:`repro.solver.backends.KernelBackend` instance.
    """

    def __init__(self, model: NonlocalHeatModel, grid: UniformGrid,
                 stencil: Optional[NonlocalStencil] = None,
                 backend: Union[str, KernelBackend] = "auto") -> None:
        if stencil is None:
            stencil = build_stencil(grid.h, model.epsilon, model.influence,
                                    dim=model.dim)
        self.model = model
        self.grid = grid
        self.stencil = stencil
        #: combined prefactor ``c * V`` of the discrete sum
        self.scale = model.c * grid.cell_volume
        if isinstance(backend, KernelBackend):
            if backend.stencil is not stencil:
                raise ValueError(
                    "prebuilt backend was assembled for a different stencil")
            if backend.scale != self.scale:
                raise ValueError(
                    f"prebuilt backend was assembled with scale "
                    f"{backend.scale!r}, this operator needs {self.scale!r}")
            self.backend = backend
        else:
            self.backend = make_backend(backend, stencil, self.scale)

    @property
    def radius(self) -> int:
        """Ghost-layer width in DPs."""
        return self.stencil.radius

    @property
    def backend_name(self) -> str:
        """Registry name of the kernel backend executing the applies."""
        return self.backend.name

    def apply(self, u: np.ndarray) -> np.ndarray:
        """``L(u)`` over the full grid; ``u`` has shape ``grid.shape``.

        Points outside the array are treated as zero — the ``Dc``
        boundary condition.
        """
        if u.shape != self.grid.shape:
            raise ValueError(f"field shape {u.shape} != grid {self.grid.shape}")
        return self.backend.apply_full(u)

    def apply_block(self, padded: np.ndarray, radius: Optional[int] = None) -> np.ndarray:
        """``L(u)`` on an SD block given its ghost-padded neighborhood.

        ``padded`` must extend the target block by the stencil radius on
        every side (ghost values from neighbouring SDs, zeros where the
        halo leaves the domain).  Returns the update for the interior
        block only (shape reduced by ``2*radius`` per axis).
        """
        r = self.radius if radius is None else radius
        if r != self.radius:
            raise ValueError(f"padding radius {r} != stencil radius {self.radius}")
        if padded.shape[0] <= 2 * r or padded.shape[1] <= 2 * r:
            raise ValueError(
                f"padded block {padded.shape} too small for radius {r}")
        return self.backend.apply_padded(padded)

    def flops_per_dp(self) -> float:
        """Approximate floating-point work per DP update.

        One multiply-add per stencil neighbour; used as the work model by
        the simulated cluster so task costs track the actual kernel cost.
        """
        return 2.0 * self.stencil.num_neighbors


def assemble_sparse_operator(model: NonlocalHeatModel,
                             grid: UniformGrid) -> sp.csr_matrix:
    """Explicit sparse matrix of ``L`` (reference implementation).

    Row-major DP ordering (``idx = iy * nx + ix``).  O(N * stencil) memory
    — for tests on small grids only.
    """
    stencil = build_stencil(grid.h, model.epsilon, model.influence,
                            dim=model.dim)
    ny, nx = grid.shape
    R = stencil.radius
    scale = model.c * grid.cell_volume
    rows, cols, vals = [], [], []
    mask = stencil.mask
    mask_h = mask.shape[0]
    for iy in range(ny):
        for ix in range(nx):
            i = iy * nx + ix
            diag = 0.0
            for my in range(mask_h):
                dy = my - mask_h // 2
                for mx in range(mask.shape[1]):
                    dx = mx - R
                    w = mask[my, mx]
                    if w == 0.0:
                        continue
                    jy, jx = iy + dy, ix + dx
                    diag -= w  # the -S u_i part, all neighbours count
                    if 0 <= jy < ny and 0 <= jx < nx:
                        rows.append(i)
                        cols.append(jy * nx + jx)
                        vals.append(scale * w)
            rows.append(i)
            cols.append(i)
            vals.append(scale * diag)
    n = grid.num_points
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def stable_dt(model: NonlocalHeatModel, grid: UniformGrid,
              safety: float = 0.5,
              stencil: Optional[NonlocalStencil] = None) -> float:
    """Forward-Euler stable timestep for the discrete operator.

    The operator's eigenvalues lie in ``[-2 c V S, 0]`` (the convolution
    symbol of a non-negative mask is bounded by ``S`` in magnitude), so
    Euler is stable for ``dt <= 1 / (c V S)``; ``safety`` shrinks that
    bound.  Passing a prebuilt ``stencil`` skips the (re)assembly — used
    by solvers that already hold a cached operator.
    """
    if stencil is None:
        stencil = build_stencil(grid.h, model.epsilon, model.influence,
                                dim=model.dim)
    bound = 1.0 / (model.c * grid.cell_volume * stencil.weight_sum)
    return safety * bound
