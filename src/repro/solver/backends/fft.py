"""FFT backend: precomputed mask transform per apply shape.

The dense path recomputes the mask's FFT (and its overlap-add
chunking) on every call; a time-stepping solver applies the *same*
mask to the *same* shapes thousands of times.  This backend computes
the full linear convolution as one ``rfft2``/``irfft2`` pair at an
FFT-friendly padded size (``scipy.fft.next_fast_len``), caching the
mask's transform per FFT shape.  At the paper's horizon (``eps = 8h``,
17x17 masks) this wins 3-17x over the dense path on every grid the
benchmarks touch (``benchmarks/bench_kernel_backends.py``).

Zero padding up to the FFT size is exactly the zero-extension ``Dc``
boundary condition, so no correction terms are needed; the ``same`` /
``valid`` crops below select the standard convolution windows from the
full linear result.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np
from scipy import fft as sfft

from .base import ConvolutionKernelBackend
from .registry import register_backend

__all__ = ["FFTBackend"]

#: Cached mask transforms kept per backend instance; distinct SD block
#: shapes in one run are few, but cap the table so a pathological
#: caller cannot grow it without bound.
_MAX_PLANS = 32


@register_backend("fft")
class FFTBackend(ConvolutionKernelBackend):
    """Convolution via cached real-to-complex mask transforms."""

    def __init__(self, stencil, scale) -> None:
        super().__init__(stencil, scale)
        #: fft shape -> rfft2 of the zero-padded mask; guarded by a lock
        #: — the AsyncSolver applies one shared operator from worker
        #: threads
        self._mask_fft: Dict[Tuple[int, int], np.ndarray] = {}
        self._lock = threading.Lock()

    def _plan(self, in_shape: Tuple[int, int]):
        """``(fft_shape, mask_fft)`` for an input of ``in_shape``."""
        mh, mw = self.stencil.mask.shape
        fshape = (sfft.next_fast_len(in_shape[0] + mh - 1),
                  sfft.next_fast_len(in_shape[1] + mw - 1))
        with self._lock:
            H = self._mask_fft.get(fshape)
            if H is None:
                if len(self._mask_fft) >= _MAX_PLANS:
                    self._mask_fft.pop(next(iter(self._mask_fft)))
                H = sfft.rfft2(self.stencil.mask, s=fshape)
                self._mask_fft[fshape] = H
        return fshape, H

    def _convolve_full(self, u: np.ndarray) -> np.ndarray:
        """The full linear convolution (shape ``u.shape + mask - 1``)."""
        fshape, H = self._plan(u.shape)
        return sfft.irfft2(sfft.rfft2(u, s=fshape) * H, s=fshape)

    def _convolve_same(self, u: np.ndarray) -> np.ndarray:
        mh, mw = self.stencil.mask.shape
        full = self._convolve_full(u)
        oy, ox = mh // 2, mw // 2
        return full[oy:oy + u.shape[0], ox:ox + u.shape[1]]

    def _convolve_valid(self, padded: np.ndarray) -> np.ndarray:
        mh, mw = self.stencil.mask.shape
        full = self._convolve_full(padded)
        return full[mh - 1:padded.shape[0], mw - 1:padded.shape[1]]
