"""Pluggable high-performance kernel backends.

Interchangeable implementations of the padded-block nonlocal operator
apply ``L(u) = c V (W ⊛ u - S u)`` behind one interface
(:class:`KernelBackend`), selected per run via the ``kernel_backend``
field on :class:`repro.experiments.ScenarioSpec`, the CLI's
``--backend`` flag, or the ``REPRO_KERNEL_BACKEND`` environment
variable:

* ``direct`` — per-call dense convolution (the seed implementation);
* ``fft``    — precomputed mask FFT per apply shape, the large-horizon
  winner (3-17x at ``eps = 8h``);
* ``sparse`` — cached CSR matvec with the full operator folded in;
* ``auto``   — radius heuristic (``fft`` for R >= 3, else ``direct``),
  overridable by the environment.

All backends are validated against :func:`apply_operator_reference`
and against each other by the golden/property suites in
``tests/solver``.  Virtual-time task costs in the simulated cluster
remain neighbor-count-based and backend-independent, so schedules and
makespans do not change with the backend — only real wall-clock
numerics do.
"""

from .base import (ConvolutionKernelBackend, KernelBackend,
                   apply_operator_reference)
from .registry import (AUTO, ENV_VAR, auto_backend_name, backend_names,
                       get_backend_class, make_backend, register_backend,
                       requested_backend)

# importing the implementations registers them
from .direct import DirectBackend
from .fft import FFTBackend
from .sparse import SparseBackend

__all__ = [
    "KernelBackend", "ConvolutionKernelBackend", "apply_operator_reference",
    "AUTO", "ENV_VAR", "register_backend", "backend_names",
    "get_backend_class", "requested_backend", "auto_backend_name",
    "make_backend",
    "DirectBackend", "FFTBackend", "SparseBackend",
]
