"""Backend interface and the reference numerics oracle.

A *kernel backend* is one interchangeable implementation of the
discrete nonlocal operator application

    L(u)_i = scale * [ (W ⊛ u)_i  -  S * u_i ]

where ``W`` is the stencil mask, ``S = sum(W)`` and ``scale = c * V``
(see :mod:`repro.solver.kernel`).  The convolution convention is the
true linear convolution with zero extension outside the array (the
``Dc`` boundary condition), exactly as computed by
``scipy.signal.oaconvolve``: ``(W ⊛ u)_i = sum_d W[center + d] u_{i-d}``.

Two entry points cover every solver in the repository:

* :meth:`KernelBackend.apply_full` — ``L(u)`` over a whole grid
  (mode ``same``), used by the serial solver and the manufactured
  source;
* :meth:`KernelBackend.apply_padded` — ``L(u)`` for one SD block given
  its ghost-padded neighborhood (mode ``valid``), the hot path of the
  async and distributed solvers.

All backends must agree with :func:`apply_operator_reference` — an
independent shifted-slice implementation kept free of ``scipy`` — to
near machine precision; the golden and property suites in
``tests/solver`` enforce this.

Single-row masks (the 1-D model, shape ``(1, 2k+1)``) are part of the
contract: a valid convolution only shrinks the axes the mask spans, so
the padded apply trims the y halo explicitly.  This is the corrected
1-D path — the previous dense implementation returned a block of shape
``(1 + 2R, w)`` instead of ``(1, w)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ...mesh.stencil import NonlocalStencil

__all__ = ["KernelBackend", "ConvolutionKernelBackend",
           "apply_operator_reference"]


class KernelBackend(ABC):
    """One implementation of the nonlocal operator apply.

    Parameters
    ----------
    stencil:
        The precomputed interaction mask (supplies ``W``, ``R``, ``S``).
    scale:
        The combined prefactor ``c * V`` of the discrete sum.

    Backends may precompute per-shape state lazily (mask FFTs, sparse
    matrices); instances are therefore cheap to construct and amortize
    over repeated applies of the same shape — exactly the access
    pattern of a time-stepping solver.
    """

    #: registry name, set by the ``register_backend`` decorator
    name = "abstract"

    def __init__(self, stencil: NonlocalStencil, scale: float) -> None:
        self.stencil = stencil
        self.scale = float(scale)

    @abstractmethod
    def apply_full(self, u: np.ndarray) -> np.ndarray:
        """``L(u)`` over the full grid (zero extension outside)."""

    @abstractmethod
    def apply_padded(self, padded: np.ndarray) -> np.ndarray:
        """``L(u)`` for the interior block of a ghost-padded array.

        ``padded`` extends the target block by the stencil radius ``R``
        on every side; the result has shape ``padded.shape - 2R`` per
        axis.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} R={self.stencil.radius}>"


class ConvolutionKernelBackend(KernelBackend):
    """Template for backends that compute the convolution explicitly.

    Subclasses provide the raw ``same``/``valid`` convolutions; the
    ``- S u`` correction, the scale, and the single-row-mask halo trim
    live here so every convolution backend shares the corrected 1-D
    path.
    """

    @abstractmethod
    def _convolve_same(self, u: np.ndarray) -> np.ndarray:
        """Linear convolution with the mask, cropped to ``u.shape``."""

    @abstractmethod
    def _convolve_valid(self, padded: np.ndarray) -> np.ndarray:
        """Linear convolution restricted to fully overlapping offsets."""

    def apply_full(self, u: np.ndarray) -> np.ndarray:
        conv = self._convolve_same(u)
        return self.scale * (conv - self.stencil.weight_sum * u)

    def apply_padded(self, padded: np.ndarray) -> np.ndarray:
        r = self.stencil.radius
        conv = self._convolve_valid(padded)
        if self.stencil.mask.shape[0] == 1 and r > 0:
            # a single-row mask does not shrink the y axis under a
            # valid convolution; cut the y halo explicitly (1-D model)
            conv = conv[r:-r, :]
        core = padded[r:-r, r:-r] if r > 0 else padded
        return self.scale * (conv - self.stencil.weight_sum * core)


def apply_operator_reference(stencil: NonlocalStencil, scale: float,
                             u: np.ndarray) -> np.ndarray:
    """Independent full-grid apply: the oracle every backend must match.

    Plain shifted-slice accumulation with explicit zero extension and no
    ``scipy`` involvement — slow (one pass per mask entry) but direct
    enough to audit against eq. (5) by eye.  Used by the golden-fixture
    generator and the property-based equivalence suite.
    """
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 2:
        raise ValueError(f"field must be 2-D, got shape {u.shape}")
    mask = stencil.mask
    cy, cx = mask.shape[0] // 2, mask.shape[1] // 2
    ny, nx = u.shape
    conv = np.zeros_like(u)
    for my in range(mask.shape[0]):
        for mx in range(mask.shape[1]):
            w = mask[my, mx]
            if w == 0.0:
                continue
            dy, dx = my - cy, mx - cx
            # conv[i] += w * u[i - d], zero outside the array
            y0, y1 = max(0, dy), ny + min(0, dy)
            x0, x1 = max(0, dx), nx + min(0, dx)
            if y0 >= y1 or x0 >= x1:
                continue
            conv[y0:y1, x0:x1] += w * u[y0 - dy:y1 - dy, x0 - dx:x1 - dx]
    return scale * (conv - stencil.weight_sum * u)
