"""Backend registry, selection heuristic, and environment override.

Selection order for a requested backend name:

1. an explicit registered name (``"direct"``, ``"fft"``, ``"sparse"``)
   is honored as-is — unit tests and ablations that name a backend get
   exactly that backend;
2. ``"auto"`` consults the ``REPRO_KERNEL_BACKEND`` environment
   variable (the CI matrix forces each backend over the whole suite
   this way);
3. otherwise ``"auto"`` resolves by the measured heuristic of
   :func:`auto_backend_name` (see DESIGN.md, *Kernel backends*).
"""

from __future__ import annotations

import os
from typing import Dict, List, Type

from ...mesh.stencil import NonlocalStencil
from .base import KernelBackend

__all__ = ["AUTO", "ENV_VAR", "register_backend", "backend_names",
           "get_backend_class", "requested_backend", "auto_backend_name",
           "make_backend"]

#: The selection sentinel: resolve by env var, then heuristic.
AUTO = "auto"
#: Environment variable forcing the resolution of ``"auto"`` requests.
ENV_VAR = "REPRO_KERNEL_BACKEND"

_BACKENDS: Dict[str, Type[KernelBackend]] = {}


def register_backend(name: str):
    """Class decorator: register a :class:`KernelBackend` under ``name``."""
    def deco(cls: Type[KernelBackend]) -> Type[KernelBackend]:
        if name == AUTO:
            raise ValueError(f"{AUTO!r} is reserved for the heuristic")
        if name in _BACKENDS:
            raise ValueError(f"backend {name!r} already registered")
        cls.name = name
        _BACKENDS[name] = cls
        return cls
    return deco


def backend_names() -> List[str]:
    """All registered backend names, sorted (``auto`` excluded)."""
    return sorted(_BACKENDS)


def get_backend_class(name: str) -> Type[KernelBackend]:
    if name not in _BACKENDS:
        raise KeyError(f"unknown kernel backend {name!r}; "
                       f"known: {', '.join(backend_names())}")
    return _BACKENDS[name]


def requested_backend(name: str = AUTO) -> str:
    """Validate ``name`` and apply the env override to ``auto`` requests.

    Returns either a registered backend name or ``"auto"`` (still to be
    resolved by the heuristic).  Explicit names win over the
    environment: forcing via ``REPRO_KERNEL_BACKEND`` reroutes every
    default-configured run without silently rewriting tests and
    ablations that pin a specific backend.
    """
    if name == AUTO:
        forced = os.environ.get(ENV_VAR, "").strip()
        if forced and forced != AUTO:  # =auto means "no override"
            if forced not in _BACKENDS:
                raise ValueError(
                    f"{ENV_VAR}={forced!r} names an unknown backend; "
                    f"known: {', '.join(backend_names())} (or {AUTO!r})")
            return forced
        return AUTO
    if name not in _BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; "
                         f"known: {', '.join(backend_names())} (or {AUTO!r})")
    return name


def auto_backend_name(radius: int) -> str:
    """The heuristic behind ``"auto"``: pick by stencil radius.

    Measured on the repository's shapes (see DESIGN.md and
    ``benchmarks/bench_kernel_backends.py``): the FFT backend's
    precomputed mask transform beats the dense convolution by 3-17x
    once the mask is non-trivial, while at very small radii (R <= 2,
    masks up to 5x5) the dense path is already cheap and carries no
    per-shape plan state.  The sparse backend is never auto-selected:
    its O(N * stencil) matrix pays off only when explicitly requested
    for repeated small-block applies or as a cross-check.

    Taking the radius (not the stencil) lets callers that know the
    radius without assembling anything — like the experiment runner's
    operator cache, where ``R = floor(eps_factor)`` — resolve ``auto``
    up front and share one memoized operator with explicit requests
    for the same name.
    """
    return "fft" if radius >= 3 else "direct"


def make_backend(name: str, stencil: NonlocalStencil,
                 scale: float) -> KernelBackend:
    """Instantiate the backend ``name`` resolves to for this stencil."""
    resolved = requested_backend(name)
    if resolved == AUTO:
        resolved = auto_backend_name(stencil.radius)
    return get_backend_class(resolved)(stencil, scale)
