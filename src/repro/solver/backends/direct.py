"""Dense-convolution backend: the seed implementation, unchanged.

``scipy.signal.oaconvolve`` (overlap-add, with scipy choosing direct vs
FFT per call) applied to the raw field.  Stateless — no per-shape plans
or matrices — which makes it the safe default for tiny stencils and the
numerics baseline the other backends are validated against.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import oaconvolve

from .base import ConvolutionKernelBackend
from .registry import register_backend

__all__ = ["DirectBackend"]


@register_backend("direct")
class DirectBackend(ConvolutionKernelBackend):
    """Per-call dense convolution via ``oaconvolve``."""

    def _convolve_same(self, u: np.ndarray) -> np.ndarray:
        return oaconvolve(u, self.stencil.mask, mode="same")

    def _convolve_valid(self, padded: np.ndarray) -> np.ndarray:
        return oaconvolve(padded, self.stencil.mask, mode="valid")
