"""Sparse-matrix backend: the whole operator as one cached CSR matvec.

The operator is linear, so ``L(u) = A u`` for an explicit matrix that
folds the convolution weights, the ``-S`` diagonal, and the ``c V``
scale into one CSR apply.  Matrices are assembled vectorized (one COO
slab per mask offset) and cached per input shape — a time-stepper pays
the assembly once and then runs pure ``csr_matvec``.

This is the backend of choice when an explicit matrix is wanted anyway
(cross-validation, spectral analysis, future implicit integrators); for
raw throughput on large grids the FFT backend wins, which is why
``auto`` never selects sparse (see ``registry.auto_backend_name``).
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from .base import KernelBackend
from .registry import register_backend

__all__ = ["SparseBackend"]

#: Per-instance cap on cached matrices (full grids and padded blocks).
_MAX_MATRICES = 16


@register_backend("sparse")
class SparseBackend(KernelBackend):
    """Precomputed CSR apply, cached per (kind, shape)."""

    def __init__(self, stencil, scale) -> None:
        super().__init__(stencil, scale)
        # guarded by a lock: the AsyncSolver applies one shared
        # operator from worker threads
        self._matrices: Dict[Tuple[str, int, int], sp.csr_matrix] = {}
        self._lock = threading.Lock()

    # -- assembly ----------------------------------------------------------
    def _offsets(self):
        """``(dy, dx, w)`` per non-zero mask entry, center-relative."""
        mask = self.stencil.mask
        cy, cx = mask.shape[0] // 2, mask.shape[1] // 2
        for my in range(mask.shape[0]):
            for mx in range(mask.shape[1]):
                w = mask[my, mx]
                if w != 0.0:
                    yield my - cy, mx - cx, w

    def _cache(self, key, build):
        with self._lock:
            A = self._matrices.get(key)
            if A is None:
                if len(self._matrices) >= _MAX_MATRICES:
                    self._matrices.pop(next(iter(self._matrices)))
                A = build()
                self._matrices[key] = A
        return A

    def _full_matrix(self, shape: Tuple[int, int]) -> sp.csr_matrix:
        """``A`` with ``L(u).ravel() = A @ u.ravel()`` (zero extension)."""
        def build():
            ny, nx = shape
            n = ny * nx
            idx = np.arange(n).reshape(ny, nx)
            rows, cols, vals = [], [], []
            for dy, dx, w in self._offsets():
                # conv[i] += w * u[i - d]; clip to the array (Dc = 0)
                y0, y1 = max(0, dy), ny + min(0, dy)
                x0, x1 = max(0, dx), nx + min(0, dx)
                if y0 >= y1 or x0 >= x1:
                    continue
                dst = idx[y0:y1, x0:x1].ravel()
                src = idx[y0 - dy:y1 - dy, x0 - dx:x1 - dx].ravel()
                rows.append(dst)
                cols.append(src)
                vals.append(np.full(dst.size, w))
            diag = np.arange(n)
            rows.append(diag)
            cols.append(diag)
            vals.append(np.full(n, -self.stencil.weight_sum))
            A = sp.coo_matrix(
                (self.scale * np.concatenate(vals),
                 (np.concatenate(rows), np.concatenate(cols))),
                shape=(n, n))
            return A.tocsr()
        return self._cache(("full",) + tuple(shape), build)

    def _padded_matrix(self, pshape: Tuple[int, int]) -> sp.csr_matrix:
        """``A`` mapping a ghost-padded block to its interior update.

        Every interior point's whole neighborhood lies inside the
        padded array (that is what the ghost layer guarantees), so no
        clipping occurs — rows are dense in the stencil.
        """
        def build():
            r = self.stencil.radius
            py, px = pshape
            oy, ox = py - 2 * r, px - 2 * r
            pidx = np.arange(py * px).reshape(py, px)
            out = np.arange(oy * ox)
            rows, cols, vals = [], [], []
            for dy, dx, w in self._offsets():
                src = pidx[r - dy:r - dy + oy, r - dx:r - dx + ox].ravel()
                rows.append(out)
                cols.append(src)
                vals.append(np.full(out.size, w))
            core = pidx[r:py - r, r:px - r].ravel()
            rows.append(out)
            cols.append(core)
            vals.append(np.full(out.size, -self.stencil.weight_sum))
            A = sp.coo_matrix(
                (self.scale * np.concatenate(vals),
                 (np.concatenate(rows), np.concatenate(cols))),
                shape=(oy * ox, py * px))
            return A.tocsr()
        return self._cache(("padded",) + tuple(pshape), build)

    # -- applies -----------------------------------------------------------
    def apply_full(self, u: np.ndarray) -> np.ndarray:
        A = self._full_matrix(u.shape)
        return (A @ u.reshape(-1)).reshape(u.shape)

    def apply_padded(self, padded: np.ndarray) -> np.ndarray:
        r = self.stencil.radius
        out_shape = (padded.shape[0] - 2 * r, padded.shape[1] - 2 * r)
        A = self._padded_matrix(padded.shape)
        return (A @ padded.reshape(-1)).reshape(out_shape)
