"""Nonlocal heat-equation model definition (paper Sec. 3).

Collects the continuum model parameters: horizon ``eps``, conductivity
``k``, the influence function ``J``, and the scaling constant ``c`` from
eq. (2):

* 1-D: ``c = k / (eps^3 M_2)``
* 2-D: ``c = 2 k / (pi eps^4 M_3)``

with the moments ``M_i = ∫_0^1 J(r) r^i dr`` of the normalized influence
function.  The constants are chosen so the nonlocal operator converges to
``k Δu`` as ``eps -> 0`` (Taylor expansion argument in the paper).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

__all__ = ["InfluenceFunction", "constant_influence", "linear_influence",
           "gaussian_influence", "influence_moment", "NonlocalHeatModel"]


class InfluenceFunction:
    """A named, vectorized influence function ``J(r)`` on ``r in [0, 1]``.

    ``J`` must be non-negative; moments are computed analytically when
    ``moment_fn`` is provided, otherwise by high-order numerical
    quadrature.
    """

    def __init__(self, name: str, fn: Callable[[np.ndarray], np.ndarray],
                 moment_fn: Callable[[int], float] = None) -> None:
        self.name = name
        self._fn = fn
        self._moment_fn = moment_fn

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self._fn(np.asarray(r))

    def moment(self, i: int) -> float:
        """``M_i = ∫_0^1 J(r) r^i dr``."""
        if self._moment_fn is not None:
            return self._moment_fn(i)
        return influence_moment(self, i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InfluenceFunction {self.name}>"


def influence_moment(J: Callable[[np.ndarray], np.ndarray], i: int,
                     n: int = 4001) -> float:
    """Numerical ``∫_0^1 J(r) r^i dr`` by composite Simpson's rule."""
    if i < 0:
        raise ValueError(f"moment order must be >= 0, got {i}")
    if n % 2 == 0:
        n += 1
    r = np.linspace(0.0, 1.0, n)
    f = np.asarray(J(r)) * r ** i
    w = np.ones(n)
    w[1:-1:2] = 4.0
    w[2:-1:2] = 2.0
    return float((r[1] - r[0]) / 3.0 * (w * f).sum())


#: The paper's choice, ``J = 1`` (moments ``M_i = 1/(i+1)``).
constant_influence = InfluenceFunction(
    "constant", lambda r: np.ones_like(r),
    moment_fn=lambda i: 1.0 / (i + 1))

#: Linearly decaying micromodulus, ``J(r) = 1 - r``.
linear_influence = InfluenceFunction(
    "linear", lambda r: 1.0 - r,
    moment_fn=lambda i: 1.0 / (i + 1) - 1.0 / (i + 2))

#: Truncated Gaussian, ``J(r) = exp(-4 r^2)``.
gaussian_influence = InfluenceFunction(
    "gaussian", lambda r: np.exp(-4.0 * r ** 2))


class NonlocalHeatModel:
    """The continuum nonlocal diffusion model of eq. (1).

    Parameters
    ----------
    epsilon:
        Nonlocal horizon (``eps = 8 h`` in all the paper's experiments).
    kappa:
        Heat conductivity ``k`` of the classical limit.
    influence:
        ``J``; defaults to the paper's constant function.
    dim:
        Spatial dimension, 1 or 2.
    """

    def __init__(self, epsilon: float, kappa: float = 1.0,
                 influence: InfluenceFunction = constant_influence,
                 dim: int = 2) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if kappa <= 0:
            raise ValueError(f"kappa must be positive, got {kappa}")
        if dim not in (1, 2):
            raise ValueError(f"dim must be 1 or 2, got {dim}")
        self.epsilon = float(epsilon)
        self.kappa = float(kappa)
        self.influence = influence
        self.dim = dim

    @property
    def c(self) -> float:
        """The scaling constant of eq. (2)."""
        if self.dim == 1:
            m2 = self.influence.moment(2)
            return self.kappa / (self.epsilon ** 3 * m2)
        m3 = self.influence.moment(3)
        return 2.0 * self.kappa / (math.pi * self.epsilon ** 4 * m3)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NonlocalHeatModel eps={self.epsilon:.4g} k={self.kappa:.3g} "
                f"J={self.influence.name} dim={self.dim}>")
