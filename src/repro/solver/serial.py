"""Single-threaded reference solver (paper Sec. 6, first implementation).

Forward-Euler time stepping of eq. (5) over the full grid using the dense
convolution kernel.  This is the baseline every parallel variant is
validated against: the async and distributed solvers must reproduce its
temperatures to floating-point accuracy, since they perform the same
arithmetic in a different schedule.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..mesh.grid import UniformGrid
from .exact import ManufacturedProblem, step_error
from .kernel import NonlocalOperator, check_operator_matches, stable_dt
from .model import NonlocalHeatModel

__all__ = ["SerialSolver", "SolveResult", "solve_manufactured"]


class SolveResult:
    """Outcome of a time integration.

    Attributes
    ----------
    u:
        Final temperature field.
    times:
        The discrete times ``t_0 .. t_N`` visited.
    errors:
        Per-step errors ``e_k`` vs. the exact solution (eq. 7) when an
        exact reference was supplied, else ``None``.
    """

    def __init__(self, u: np.ndarray, times: List[float],
                 errors: Optional[List[float]]) -> None:
        self.u = u
        self.times = times
        self.errors = errors

    @property
    def total_error(self) -> Optional[float]:
        """``e = sum_k e_k`` (None without an exact reference)."""
        return None if self.errors is None else float(np.sum(self.errors))


class SerialSolver:
    """Forward-Euler integrator ``u <- u + dt (b + L u)``.

    Parameters
    ----------
    model, grid:
        Problem definition and discretization.
    source:
        ``b(t) -> field`` (or ``None`` for an unforced problem).
    dt:
        Timestep; defaults to :func:`repro.solver.kernel.stable_dt`.
    operator:
        Optional prebuilt :class:`NonlocalOperator` (e.g. from the
        experiment runner's cache); must match ``grid`` and the
        model's horizon.
    backend:
        Kernel backend name for the operator when none is injected
        (``"auto"`` by default; see :mod:`repro.solver.backends`).
    """

    def __init__(self, model: NonlocalHeatModel, grid: UniformGrid,
                 source: Optional[Callable[[float], np.ndarray]] = None,
                 dt: Optional[float] = None,
                 operator: Optional[NonlocalOperator] = None,
                 backend: str = "auto") -> None:
        self.model = model
        self.grid = grid
        if operator is None:
            operator = NonlocalOperator(model, grid, backend=backend)
        else:
            check_operator_matches(operator, model, grid)
        self.operator = operator
        self.source = source
        self.dt = (stable_dt(model, grid, stencil=operator.stencil)
                   if dt is None else float(dt))
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    def step(self, u: np.ndarray, t: float) -> np.ndarray:
        """One forward-Euler step from time ``t``; returns the new field."""
        rhs = self.operator.apply(u)
        if self.source is not None:
            rhs = rhs + self.source(t)
        return u + self.dt * rhs

    def run(self, u0: np.ndarray, num_steps: int,
            exact: Optional[Callable[[float], np.ndarray]] = None) -> SolveResult:
        """Integrate ``num_steps`` steps from ``u0``.

        ``exact(t)`` enables per-step error tracking (eq. 7), including
        the initial step ``e_0`` (zero by construction for a consistent
        initial condition, kept for parity with the paper's sum over
        ``0 <= k <= N``).
        """
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        u = np.array(u0, dtype=np.float64, copy=True)
        if u.shape != self.grid.shape:
            raise ValueError(f"u0 shape {u.shape} != grid {self.grid.shape}")
        times = [0.0]
        errors: Optional[List[float]] = None
        if exact is not None:
            errors = [step_error(self.grid, u, exact(0.0))]
        t = 0.0
        for _ in range(num_steps):
            u = self.step(u, t)
            t += self.dt
            times.append(t)
            if exact is not None:
                errors.append(step_error(self.grid, u, exact(t)))
        return SolveResult(u, times, errors)


def solve_manufactured(nx: int, eps_factor: float = 8.0,
                       num_steps: int = 20,
                       dt: Optional[float] = None,
                       source_mode: str = "continuum",
                       dim: int = 2) -> SolveResult:
    """Convenience driver for the validation study (paper Fig. 8).

    Builds the manufactured problem on an ``nx × nx`` grid (``nx × 1`` in
    1-D) with ``eps = eps_factor * h``, integrates ``num_steps`` steps,
    and returns the result with per-step errors attached.
    """
    grid = UniformGrid(nx, nx if dim == 2 else 1, dim=dim)
    model = NonlocalHeatModel(epsilon=eps_factor * grid.h, dim=dim)
    problem = ManufacturedProblem(model, grid, source_mode=source_mode)
    solver = SerialSolver(model, grid, source=problem.source, dt=dt)
    return solver.run(problem.initial_condition(), num_steps,
                      exact=problem.exact)
