"""Nonlocal heat-equation solvers (paper Secs. 3, 6, 8).

Three implementations of the same forward-Euler discretization (eq. 5),
mirroring the paper's development path:

* :class:`repro.solver.serial.SerialSolver` — single-threaded reference;
* :class:`repro.solver.async_solver.AsyncSolver` — shared-memory
  futurized SD tasks on a real thread pool (Sec. 8.2);
* :class:`repro.solver.distributed.DistributedSolver` — SD-distributed
  with ghost exchange, Case-1/Case-2 overlap and load balancing on the
  simulated cluster (Secs. 6-7, 8.3).

Supporting modules: the model constants (:mod:`repro.solver.model`), the
vectorized kernels (:mod:`repro.solver.kernel`), the pluggable kernel
backends (:mod:`repro.solver.backends`: direct / fft / sparse behind
one interface) and the manufactured exact solution
(:mod:`repro.solver.exact`).
"""

from .async_solver import AsyncSolver
from .backends import (KernelBackend, apply_operator_reference,
                       auto_backend_name, backend_names, make_backend)
from .distributed import DistributedResult, DistributedSolver
from .implicit import ImplicitSolver
from .local import LocalHeatSolver, local_stable_dt
from .exact import (ManufacturedProblem, interior_multiplier, step_error,
                    total_error)
from .kernel import NonlocalOperator, assemble_sparse_operator, stable_dt
from .model import (InfluenceFunction, NonlocalHeatModel, constant_influence,
                    gaussian_influence, influence_moment, linear_influence)
from .serial import SerialSolver, SolveResult, solve_manufactured

__all__ = [
    "AsyncSolver",
    "KernelBackend", "apply_operator_reference", "auto_backend_name",
    "backend_names", "make_backend",
    "DistributedResult", "DistributedSolver",
    "ImplicitSolver", "LocalHeatSolver", "local_stable_dt",
    "ManufacturedProblem", "interior_multiplier", "step_error", "total_error",
    "NonlocalOperator", "assemble_sparse_operator", "stable_dt",
    "InfluenceFunction", "NonlocalHeatModel", "constant_influence",
    "gaussian_influence", "influence_moment", "linear_influence",
    "SerialSolver", "SolveResult", "solve_manufactured",
]
