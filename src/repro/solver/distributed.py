"""Distributed solver on the simulated cluster (paper Secs. 6 & 8.3).

Each timestep reproduces the schedule of the paper's Fig. 4:

1. **ghost exchange** — for every SD whose halo crosses a node boundary,
   a message (latency + bytes/bandwidth, egress-serialized) is sent from
   the owner of the data to the owner of the SD;
2. **Case-2 computation** — every SD immediately runs a task for its DPs
   that do not depend on foreign data;
3. **Case-1 computation** — a second task per SD, dependent on that SD's
   incoming ghost messages, covers the remaining DPs (communication is
   hidden behind the Case-2 work);
4. **step barrier** — when all SD tasks of the step have completed, the
   balancing policy is consulted; if it fires, Algorithm 1 redistributes
   SDs, migration messages are charged, counters are reset, and the next
   step starts once migrations have arrived.

Numerics are real (each SD block update is executed with the NumPy
kernel and validated against the serial solver); *time* is virtual (see
DESIGN.md substitution 1).  Set ``compute_numerics=False`` for pure
scaling studies where only the schedule matters.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..amt.cluster import (BusyCursor, ConstantSpeed, Network, SimCluster,
                           SimTask, SpeedTrace, StraggleSpeed)
from ..amt.faults import ChurnEvent, FaultSchedule, RecoveryEvent
from ..amt.future import Future, local_when_all
from ..core.balancer import BalanceResult, LoadBalancer
from ..core.policy import BalancePolicy, NeverBalance
from ..core.power import imbalance_ratio
from ..core.strategies import (BalanceEvent, BalanceStrategy,
                               evacuate_assignments, make_strategy)
from ..costmodel import CostModel, FlatCostModel, WorkItem, make_cost_model
from ..mesh.decomposition import BYTES_PER_DP, Decomposition
from ..mesh.grid import UniformGrid
from ..mesh.subdomain import SubdomainGrid
from .exact import step_error
from .kernel import NonlocalOperator, check_operator_matches, stable_dt
from .model import NonlocalHeatModel

__all__ = ["DistributedResult", "DistributedSolver"]


class DistributedResult:
    """Everything the paper's evaluation reads off a distributed run."""

    def __init__(self) -> None:
        #: final temperature field (None when numerics were skipped)
        self.u: Optional[np.ndarray] = None
        #: virtual seconds from first task to last barrier
        self.makespan: float = 0.0
        #: virtual duration of each timestep
        self.step_durations: List[float] = []
        #: max/mean busy-time ratio measured at the end of each step
        #: (over the current measurement window — counters reset when
        #: the balancer runs, Algorithm 1 line 35)
        self.imbalance_history: List[float] = []
        #: per-step errors vs the exact solution (eq. 7), if requested
        self.errors: Optional[List[float]] = None
        #: SD ownership after each balancing event (step, parts)
        self.parts_history: List = []
        #: BalanceResult per triggered balancing step
        self.balance_results: List[BalanceResult] = []
        #: one :class:`BalanceEvent` per balancer invocation (including
        #: no-op decisions): step, strategy, SDs moved, migration bytes,
        #: measured/predicted imbalance ratio — the migration-cost
        #: telemetry the paper's evaluation reads per event
        self.balance_events: List[BalanceEvent] = []
        #: one :class:`repro.amt.faults.RecoveryEvent` per handled
        #: churn event (node failure or join), in virtual-time order
        self.recovery_events: List[RecoveryEvent] = []
        #: ghost bytes sent over the run
        self.ghost_bytes: int = 0
        #: bytes per network route class (``remote`` on the flat model;
        #: ``intra_rack`` / ``inter_rack`` / ``wan`` on the topology
        #: models — see :mod:`repro.amt.topology`); classes partition
        #: the traffic, so the values sum to the network's total
        self.bytes_by_class: Dict[str, int] = {}
        #: per-node busy time accumulated over the whole run
        self.busy_total: Optional[np.ndarray] = None

    @property
    def migration_bytes(self) -> int:
        """SD migration bytes charged by balancing (sum over events)."""
        return sum(e.migration_bytes for e in self.balance_events)

    @property
    def sds_moved(self) -> int:
        """Total SDs moved by balancing over the run (sum over events)."""
        return sum(e.sds_moved for e in self.balance_events)

    @property
    def total_error(self) -> Optional[float]:
        """Summed eq.-(7) error (None without an exact reference)."""
        return None if self.errors is None else float(np.sum(self.errors))


class _StepPlan:
    """Step-invariant schedule structure, cached between ownership changes.

    Every timestep with the same SD ownership builds the *same* ghost
    messages and the same per-SD work amounts: ``Decomposition``, the
    halo sweep behind ``ghost_messages`` and the per-SD ``case_split``
    depend only on ``(parts, sd_grid, radius)``.  Rebuilding them each
    step dominates the wall time of schedule-only scaling runs, so the
    solver compiles them once into plain tuples and replays those until
    ownership changes (balancing, failure, join) or a new run starts.

    The cached work floats are resolved through the solver's cost model
    once at compile time (``flat`` evaluates the seed's ``count * flops
    * work_factor`` left to right), so replayed schedules are
    bit-identical to rebuilt ones.
    """

    __slots__ = ("messages", "ghost_sds", "tasks")

    def __init__(self, messages: List[Tuple[int, int, int]],
                 ghost_sds: List[int], tasks: List[tuple]) -> None:
        #: ``(src_node, dst_node, nbytes)`` per ghost message, in
        #: ``Decomposition.ghost_messages`` order, active SDs only
        #: (the batched-send input, see ``SimCluster.send_many``)
        self.messages = messages
        #: destination SD of each message, parallel to ``messages``
        self.ghost_sds = ghost_sds
        #: per active SD, in SD order: ``(sd, node, w2, w1)`` with the
        #: overlap split (``None`` marks an empty case), or
        #: ``(sd, node, w_total)`` without overlap
        self.tasks = tasks


class DistributedSolver:
    """SD-distributed forward-Euler integrator with optional balancing.

    Parameters
    ----------
    model, grid, sd_grid:
        Problem definition, discretization, SD geometry.
    parts:
        Initial SD ownership (e.g. from
        :func:`repro.partition.kway.partition_sd_grid`).
    num_nodes:
        Cluster size; ``parts`` entries must lie in ``[0, num_nodes)``.
    cores_per_node, speeds, network:
        Simulated-cluster configuration (see :class:`repro.amt.cluster
        .SimCluster`); ``speeds`` in DP-update-flops per virtual second.
        ``network`` may be the legacy flat :class:`repro.amt.cluster
        .Network` or any :class:`repro.amt.topology.Topology` (rack
        hierarchies, oversubscribed uplinks, WAN joiners); ghost,
        migration, and recovery transfers are all routed through it.
        Its link state is reset at the start of every :meth:`run`.
    source, dt:
        As in the serial solver.
    work_factors:
        Optional per-SD work multipliers (< 1 inside a crack — see
        :mod:`repro.models.crack`); scales simulated task cost only.
    balancer, policy:
        Load balancing configuration.  ``balancer`` may be a strategy
        *name* (``"tree"``, ``"diffusion"``, ``"greedy"``,
        ``"repartition"``, or ``"auto"`` — the ``REPRO_BALANCER``
        override, else the paper's algorithm), a prebuilt
        :class:`repro.core.strategies.BalanceStrategy`, or a
        :class:`LoadBalancer` facade; the solver resolves names at
        construction.  ``None`` disables balancing outright (the
        pre-strategy contract), as does the default
        :class:`NeverBalance` policy.
    overlap:
        ``False`` disables the Case-1/Case-2 split (every SD task waits
        for its ghosts) — the ablation baseline for Sec. 6.3.
    compute_numerics:
        ``False`` skips the NumPy kernels (schedule-only run).
    domain_mask:
        Optional :class:`repro.mesh.domain.DomainMask` for non-square
        domains (the paper's future-work item): inactive SDs run no
        tasks, exchange no ghosts, and their temperature is pinned to
        zero — the ``Dc`` condition extended to internal voids.
    spawn_overhead:
        Serial per-task scheduling cost in virtual seconds: each node's
        i-th task of a step only becomes runnable ``i * spawn_overhead``
        after the step starts.  This is the Amdahl component that makes
        real AMT speedups saturate below the core count (HPX task
        overheads are on the order of a microsecond); 0 disables it.
    operator:
        Optional prebuilt :class:`NonlocalOperator` for this model/grid
        (e.g. from :func:`repro.experiments.runner.cached_operator`);
        sweeps over repeated ``(nx, eps)`` points share the neighborhood
        assembly instead of rebuilding it per run.
    backend:
        Kernel backend name for the operator when none is injected
        (``"auto"`` by default; see :mod:`repro.solver.backends`).
        Backends change only how the real numerics are computed —
        virtual task costs stay neighbor-count-based, so schedules and
        makespans are backend-independent.
    faults:
        Optional :class:`repro.amt.faults.FaultSchedule` (elastic
        cluster, DESIGN.md substitution 4).  Straggle windows are
        composed exactly into the per-node speed traces at
        construction; node failures and joins are injected into the
        event queue at their virtual times.  On a failure the node's
        in-flight and queued tasks are requeued on the SDs' new owners
        at ``(1 + recovery_penalty)`` times their work, gated on the
        SD-state re-fetch message from the checkpoint store on the
        lead (lowest-id) surviving node; the dead node's SDs are
        evacuated through the active balancing strategy (mechanically,
        when balancing is disabled — evacuation is a correctness
        requirement, rebalancing a policy choice).  Joiners are
        absorbed at the end of the step they join in, at the next
        balance step.  The schedule is data, so runs stay bit-identical
        and process-parallel sweeps equal serial execution.
    cost_model:
        Task-cost model name or prebuilt instance (``"auto"`` honors
        the ``REPRO_COST_MODEL`` override, else ``"flat"`` — see
        :mod:`repro.costmodel`).  ``flat`` reproduces the seed
        arithmetic bit for bit; ``hierarchy`` prices each SD task
        against the node memory hierarchy through offline
        reuse-distance profiles, so block shape and kernel backend
        change virtual task costs (and the balancer's eq-8 work
        weights scale accordingly).
    memory:
        Optional :class:`repro.costmodel.MemoryHierarchy` handed to the
        cost model (hierarchy models default to
        :data:`repro.costmodel.DEFAULT_HIERARCHY` without one).
    """

    def __init__(self, model: NonlocalHeatModel, grid: UniformGrid,
                 sd_grid: SubdomainGrid, parts: Sequence[int],
                 num_nodes: int, cores_per_node: int = 1,
                 speeds: Optional[Sequence[SpeedTrace]] = None,
                 network: Optional[Network] = None,
                 source: Optional[Callable[[float], np.ndarray]] = None,
                 dt: Optional[float] = None,
                 work_factors: Optional[Sequence[float]] = None,
                 balancer: Union[str, LoadBalancer, BalanceStrategy,
                                 None] = "auto",
                 policy: Optional[BalancePolicy] = None,
                 overlap: bool = True,
                 compute_numerics: bool = True,
                 domain_mask=None,
                 spawn_overhead: float = 0.0,
                 operator: Optional[NonlocalOperator] = None,
                 backend: str = "auto",
                 faults: Optional[FaultSchedule] = None,
                 cost_model: Union[str, CostModel] = "auto",
                 memory=None) -> None:
        if (sd_grid.mesh_nx, sd_grid.mesh_ny) != (grid.nx, grid.ny):
            raise ValueError(
                f"SD grid covers {sd_grid.mesh_nx}x{sd_grid.mesh_ny} "
                f"but mesh is {grid.nx}x{grid.ny}")
        self.model = model
        self.grid = grid
        self.sd_grid = sd_grid
        self.parts = np.asarray(parts, dtype=np.int64).copy()
        self.num_nodes = num_nodes
        if operator is None:
            operator = NonlocalOperator(model, grid, backend=backend)
        else:
            check_operator_matches(operator, model, grid)
        self.operator = operator
        self.source = source
        self.dt = (stable_dt(model, grid, stencil=operator.stencil)
                   if dt is None else float(dt))
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if work_factors is None:
            self.work_factors = np.ones(sd_grid.num_subdomains)
        else:
            self.work_factors = np.asarray(work_factors, dtype=np.float64)
            if len(self.work_factors) != sd_grid.num_subdomains:
                raise ValueError("work_factors must have one entry per SD")
            if np.any(self.work_factors < 0):
                raise ValueError("work_factors must be non-negative")
        if isinstance(balancer, str):
            balancer = make_strategy(balancer, sd_grid)
        #: ``None`` keeps the legacy contract: balancing disabled even
        #: when the policy would fire
        self.balancer = balancer
        self.policy = policy if policy is not None else NeverBalance()
        self.overlap = overlap
        self.compute_numerics = compute_numerics
        #: ~1 Gflop/s per core: puts per-SD task times (microseconds)
        #: on the same scale as the default network's latency and
        #: per-message wire times, the regime the paper operates in
        self._default_rate = 1e9
        if speeds is None:
            speeds = [ConstantSpeed(self._default_rate)
                      for _ in range(num_nodes)]
        if faults is not None:
            if faults.initial_nodes != num_nodes:
                raise ValueError(
                    f"fault schedule was built for {faults.initial_nodes} "
                    f"initial nodes, cluster has {num_nodes}")
            speeds = list(speeds)
            for i in range(num_nodes):
                windows = [(e.time, e.stop, e.factor)
                           for e in faults.straggles_of(i)]
                if windows:
                    speeds[i] = StraggleSpeed(speeds[i], windows)
        self.faults = faults
        if spawn_overhead < 0:
            raise ValueError(f"spawn_overhead must be >= 0, got {spawn_overhead}")
        self.spawn_overhead = float(spawn_overhead)
        if isinstance(cost_model, CostModel):
            self.cost_model = cost_model
        else:
            self.cost_model = make_cost_model(cost_model, memory=memory)
        #: the model the registry actually resolved (sweeps record it)
        self.cost_model_resolved = self.cost_model.name
        self.memory = memory
        self.cluster = SimCluster(num_nodes, cores_per_node=cores_per_node,
                                  speeds=speeds, network=network,
                                  cost_model=self.cost_model, memory=memory)
        #: balancer busy-time polling: ``cursor`` (default) re-reads
        #: only nodes whose counters changed since the last poll,
        #: ``sweep`` restores the full per-node sweep (the parity
        #: baseline) — both produce bit-identical measurements
        self._poll_mode = os.environ.get("REPRO_BALANCER_POLL", "cursor")
        if self._poll_mode not in ("cursor", "sweep"):
            raise ValueError(
                f"REPRO_BALANCER_POLL must be 'cursor' or 'sweep', "
                f"got {self._poll_mode!r}")
        self._busy_cursor = BusyCursor()
        if faults is not None:
            # fault handlers poll busy_time at arbitrary mid-step times;
            # wave batching defers per-task busy accounting to the wave
            # end, which would skew the evacuation balance decision —
            # keep elastic runs on the per-event path
            self.cluster.wave_batching = False
        #: compiled step plan (``None`` until built / after ownership
        #: changes); ``REPRO_DES_PLANCACHE=0`` rebuilds it every step,
        #: restoring the uncached cost profile for benchmarking
        self._plan: Optional[_StepPlan] = None
        self._plan_cache = os.environ.get(
            "REPRO_DES_PLANCACHE", "1") != "0"
        self._faults_armed = False
        self._recovery_futs: Dict[int, Future] = {}
        self.domain_mask = domain_mask
        if domain_mask is not None:
            if domain_mask.sd_grid is not sd_grid and (
                    (domain_mask.sd_grid.sd_nx, domain_mask.sd_grid.sd_ny)
                    != (sd_grid.sd_nx, sd_grid.sd_ny)):
                raise ValueError("domain mask built for a different SD grid")
            self._active = domain_mask.active
            self._inactive_dp = ~domain_mask.dp_mask()
        else:
            self._active = None
            self._inactive_dp = None
        # validate ownership
        Decomposition(sd_grid, self.parts, num_nodes)

    # -- public API --------------------------------------------------------
    def run(self, u0: Optional[np.ndarray], num_steps: int,
            exact: Optional[Callable[[float], np.ndarray]] = None) -> DistributedResult:
        """Integrate ``num_steps`` steps; returns the run diagnostics.

        ``u0`` may be ``None`` only when ``compute_numerics=False``.
        """
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        if self.compute_numerics:
            if u0 is None:
                raise ValueError("u0 required when computing numerics")
            self._u_old = np.array(u0, dtype=np.float64, copy=True)
            if self._u_old.shape != self.grid.shape:
                raise ValueError(
                    f"u0 shape {self._u_old.shape} != grid {self.grid.shape}")
            if self._inactive_dp is not None:
                self._u_old[self._inactive_dp] = 0.0
            self._u_new = np.zeros_like(self._u_old)
        else:
            self._u_old = self._u_new = None

        # per-run network state: a reused network (or topology) object
        # must not carry the previous run's egress/link backlog or byte
        # counters into this run's schedule
        self.cluster.network.reset()
        # ownership may have changed since the last run (faults mutate
        # self.parts); never replay a stale plan across runs
        self._plan = None

        result = DistributedResult()
        if exact is not None:
            if not self.compute_numerics:
                raise ValueError("error tracking requires numerics")
            result.errors = [step_error(self.grid, self._u_old, exact(0.0))]
        self._result = result
        self._exact = exact
        self._num_steps = num_steps
        self._flops = self.operator.flops_per_dp()
        self._balance_work = self._effective_work_factors()
        self._step_start_time = 0.0
        self._failure: Optional[BaseException] = None
        self._current_step = 0
        self._done = False
        self._topology_dirty = False
        # per-run policy bookkeeping: policies are stateless, the solver
        # owns the step of the last balancing event (fresh every run, so
        # a reused policy object cannot rate-limit the next run)
        self._last_balance: Optional[int] = None

        # failure-path data movement (live migrations + checkpoint
        # re-fetches) charged mid-step; the next step may not start
        # until it has arrived, exactly like step-boundary migrations
        self._pending_recovery_futs: List[Future] = []
        if self.faults is not None and not self._faults_armed:
            # straggles were composed into the speed traces up front;
            # failures and joins are discrete events.  Priority -1:
            # a failure at the exact instant a task would complete
            # kills the task (fault detection wins the tie,
            # deterministically).
            self._faults_armed = True
            self.cluster.orphan_handler = self._requeue_orphan
            for event in self.faults.events:
                if event.kind == "fail":
                    self.cluster.sim.schedule(
                        event.time,
                        lambda e=event: self._on_fail(e.node), priority=-1)
                elif event.kind == "join":
                    self.cluster.sim.schedule(
                        event.time,
                        lambda e=event: self._on_join(e), priority=-1)

        if num_steps > 0:
            self._start_step(0)
            self.cluster.run()
            if self._failure is not None:
                raise RuntimeError(
                    "an SD kernel failed during the distributed run"
                ) from self._failure
        self._done = True

        result.makespan = self.cluster.now
        ghost_bytes = (self.cluster.network.bytes_sent
                       - result.migration_bytes
                       - sum(e.recovery_bytes
                             for e in result.recovery_events))
        if ghost_bytes < 0:
            # mis-attributed migration/recovery bytes must fail loudly
            # instead of producing negative telemetry downstream
            raise RuntimeError(
                f"ghost byte accounting went negative ({ghost_bytes}): "
                f"network sent {self.cluster.network.bytes_sent} but "
                f"{result.migration_bytes} migration + "
                f"{sum(e.recovery_bytes for e in result.recovery_events)} "
                f"recovery bytes were attributed")
        result.ghost_bytes = ghost_bytes
        result.bytes_by_class = dict(self.cluster.network.bytes_by_class)
        result.busy_total = np.array(
            [node.counter.total() for node in self.cluster.nodes])
        if self.compute_numerics:
            result.u = self._u_old.copy()
        return result

    # -- per-step machinery ----------------------------------------------------
    def _work_item(self, sd: int, count: int, wf: float) -> WorkItem:
        """The cost-model input for ``count`` DP updates of SD ``sd``."""
        rect = self.sd_grid.rect(sd)
        return WorkItem(count=count, flops=self._flops, work_factor=wf,
                        backend=self.operator.backend_name,
                        rows=rect.height, cols=rect.width,
                        radius=self.operator.radius)

    def _effective_work_factors(self) -> np.ndarray:
        """Eq-8 per-SD work weights under the active cost model.

        Flat models scale nothing, so the balancer keeps seeing the
        *same array object* as before the cost-model layer existed —
        bit-identical balance decisions by construction.  Shape-aware
        models multiply each SD's work factor by its dimensionless
        slowdown, so power-proportional targets account for cache
        behaviour exactly like the task times do.
        """
        if isinstance(self.cost_model, FlatCostModel):
            return self.work_factors
        scales = [self.cost_model.work_scale(self._work_item(sd, 1, 1.0))
                  for sd in range(self.sd_grid.num_subdomains)]
        return self.work_factors * np.asarray(scales, dtype=np.float64)

    def _poll_busy(self) -> List[float]:
        """Per-node busy time since the last counter reset.

        ``cursor`` mode re-reads only nodes whose busy counters moved
        since the previous poll (``SimCluster.poll_busy``); ``sweep``
        restores the full O(nodes) sweep.  Both return bit-identical
        values — an untouched counter's cached float *is* its value.
        """
        if self._poll_mode == "sweep":
            return [self.cluster.busy_time(n)
                    for n in range(len(self.cluster.nodes))]
        return self.cluster.poll_busy(self._busy_cursor)

    def _build_plan(self) -> _StepPlan:
        """Compile the current ownership into a :class:`_StepPlan`."""
        num_nodes = len(self.cluster.nodes)
        decomp = Decomposition(self.sd_grid, self.parts, num_nodes)
        R = self.operator.radius
        cost = self.cost_model

        # ghost messages; with a domain mask, inactive SDs are
        # known-zero (the Dc condition) so no message involving them
        # is needed
        messages: List[Tuple[int, int, int]] = []
        ghost_sds: List[int] = []
        for msg in decomp.ghost_messages(R):
            if self._active is not None and not (
                    self._active[msg.src_sd] and self._active[msg.dst_sd]):
                continue
            messages.append((msg.src_node, msg.dst_node, msg.nbytes))
            ghost_sds.append(msg.dst_sd)

        # per-SD work amounts (inactive SDs run nothing)
        tasks: List[tuple] = []
        for sd in range(self.sd_grid.num_subdomains):
            if self._active is not None and not self._active[sd]:
                continue
            node = decomp.owner(sd)
            split = decomp.case_split(sd, R)
            wf = float(self.work_factors[sd])
            if not self.overlap:
                tasks.append((sd, node, cost.task_work(
                    self._work_item(sd, split.total, wf))))
            else:
                w2 = (cost.task_work(self._work_item(sd, split.case2_count, wf))
                      if split.case2_count > 0 else None)
                w1 = (cost.task_work(self._work_item(sd, split.case1_count, wf))
                      if split.case1_count > 0 else None)
                tasks.append((sd, node, w2, w1))
        return _StepPlan(messages, ghost_sds, tasks)

    def _start_step(self, step: int) -> None:
        self._current_step = step
        num_nodes = len(self.cluster.nodes)
        plan = self._plan
        if plan is None:
            plan = self._build_plan()
            if self._plan_cache:
                self._plan = plan
        t = step * self.dt
        b = None
        if self.compute_numerics and self.source is not None:
            b = self.source(t)

        # 1. ghost messages, batched through the network, grouped by
        # destination SD
        deps_of_sd: Dict[int, List[Future]] = {}
        for dst_sd, fut in zip(plan.ghost_sds,
                               self.cluster.send_many(plan.messages)):
            deps_of_sd.setdefault(dst_sd, []).append(fut)

        # 2./3. per-SD tasks.  With spawn overhead, a node's i-th task
        # of the step only becomes runnable after i * overhead — the
        # serial scheduler component.
        spawn_count = [0] * num_nodes

        def spawn_deps(node: int) -> List[Future]:
            if self.spawn_overhead <= 0:
                return []
            spawn_count[node] += 1
            return [self.cluster.timer(spawn_count[node] * self.spawn_overhead)]

        sd_futures: List[Future] = []
        if not self.overlap:
            for sd, node, w in plan.tasks:
                action = (self._make_action(sd, b)
                          if self.compute_numerics else None)
                sd_futures.append(self.cluster.submit(
                    node, work=w, action=action,
                    deps=deps_of_sd.get(sd, []) + spawn_deps(node),
                    label=f"sd{sd}", tag=sd))
        else:
            for sd, node, w2, w1 in plan.tasks:
                action = (self._make_action(sd, b)
                          if self.compute_numerics else None)
                if w2 is not None:
                    case2_action = action if w1 is None else None
                    sd_futures.append(self.cluster.submit(
                        node, work=w2, action=case2_action,
                        deps=spawn_deps(node), label=f"sd{sd}-c2", tag=sd))
                if w1 is not None:
                    sd_futures.append(self.cluster.submit(
                        node, work=w1, action=action,
                        deps=deps_of_sd.get(sd, []) + spawn_deps(node),
                        label=f"sd{sd}-c1", tag=sd))

        def barrier(done: Future, s: int = step) -> None:
            # surface kernel exceptions instead of silently continuing
            # with a half-updated field
            for fut in done.get():
                if fut.has_exception():
                    if self._failure is None:
                        try:
                            fut.get()
                        except BaseException as exc:  # noqa: BLE001
                            self._failure = exc
                    return  # abandon the run; run() re-raises
            self._end_step(s)

        local_when_all(sd_futures)._add_callback(barrier)

    def _make_action(self, sd: int, b: Optional[np.ndarray]):
        """The real numeric update for SD ``sd`` (reads u_old, writes u_new)."""
        def action() -> None:
            R = self.operator.radius
            rect = self.sd_grid.rect(sd)
            halo = self.sd_grid.halo_rect(sd, R)
            padded = np.zeros((rect.height + 2 * R, rect.width + 2 * R))
            dy0 = halo.y0 - (rect.y0 - R)
            dx0 = halo.x0 - (rect.x0 - R)
            padded[dy0:dy0 + halo.height,
                   dx0:dx0 + halo.width] = self._u_old[halo.slices()]
            rhs = self.operator.apply_block(padded)
            if b is not None:
                rhs = rhs + b[rect.slices()]
            self._u_new[rect.slices()] = (self._u_old[rect.slices()]
                                          + self.dt * rhs)
        return action

    def _end_step(self, step: int) -> None:
        result = self._result
        now = self.cluster.now
        result.step_durations.append(now - self._step_start_time)
        self._step_start_time = now

        if self.compute_numerics:
            self._u_old, self._u_new = self._u_new, self._u_old
            if self._exact is not None:
                t = (step + 1) * self.dt
                result.errors.append(
                    step_error(self.grid, self._u_old, self._exact(t)))

        # this step's recovery transfers gate the next step start just
        # like ordinary migrations (SD data must arrive before the new
        # owner can compute on it)
        migration_futs: List[Future] = list(self._pending_recovery_futs)
        self._pending_recovery_futs = []
        num_nodes = len(self.cluster.nodes)
        busy = self._poll_busy()
        # all indicators are over the live cluster: a dead node's frozen
        # window and a fixed-membership run's full set coincide when no
        # faults are configured
        alive_busy = [busy[n] for n in self.cluster.active_node_ids()]
        result.imbalance_history.append(imbalance_ratio(alive_busy))
        # a membership change since the last balance forces one: joiners
        # are absorbed at the next balance step, which is this one
        forced = (self._topology_dirty and self.balancer is not None
                  and not isinstance(self.policy, NeverBalance))
        if (self.balancer is not None
                and (forced or self.policy.should_balance(
                    step, alive_busy, last_balance=self._last_balance))):
            self._last_balance = step
            self._topology_dirty = False
            active = (None if self.faults is None
                      else np.asarray(self.cluster.alive_mask()))
            bal = self.balancer.balance_step(
                self.parts, num_nodes, busy,
                work_per_sd=self._balance_work, active=active)
            result.balance_results.append(bal)
            event_bytes = 0
            if bal.triggered and bal.sds_moved > 0:
                moved = np.nonzero(bal.parts_before != bal.parts_after)[0]
                for sd in moved:
                    src = int(bal.parts_before[sd])
                    dst = int(bal.parts_after[sd])
                    nbytes = self.sd_grid.dp_count(int(sd)) * BYTES_PER_DP
                    migration_futs.append(
                        self.cluster.send(src, dst, nbytes))
                    event_bytes += nbytes
                self.parts = bal.parts_after.copy()
                self._plan = None  # ownership changed: recompile
                result.parts_history.append((step, self.parts.copy()))
            result.balance_events.append(BalanceEvent(
                step=step, strategy=bal.strategy,
                sds_moved=bal.sds_moved, migration_bytes=event_bytes,
                imbalance_before=float(bal.imbalance_ratio_before),
                imbalance_after=float(bal.imbalance_ratio_after),
                recovery=bool(bal.recovery or forced)))
            # Algorithm 1 line 35: new measurement window either way
            self.cluster.reset_counters()
            self.cluster.rebase_busy_cursor(self._busy_cursor)

        if step + 1 < self._num_steps:
            if migration_futs:
                local_when_all(migration_futs)._add_callback(
                    lambda _f, s=step + 1: self._start_step(s))
            else:
                self._start_step(step + 1)
        else:
            self._done = True

    # -- fault handling (elastic cluster, DESIGN.md substitution 4) --------
    def _on_fail(self, node_id: int) -> None:
        """Handle a scheduled node failure at the current virtual time.

        The dead node's SDs are evacuated immediately — through the
        active balancing strategy when the run balances (the strategy
        both evacuates and redistributes toward the surviving nodes'
        power-proportional targets), mechanically otherwise (evacuation
        is a correctness requirement; rebalancing stays a policy
        choice, so a ``never`` baseline measures exactly the cost of
        not adapting).  Orphaned tasks are requeued on the new owners
        with the recovery penalty, gated on the SD-state re-fetch from
        the checkpoint store on the lead surviving node.
        """
        if self._done:
            return  # scheduled beyond the workload's end: nothing to do
        cluster = self.cluster
        orphans = cluster.fail_node(node_id)
        num_nodes = len(cluster.nodes)
        alive = np.asarray(cluster.alive_mask())
        busy = self._poll_busy()
        old_parts = self.parts
        step = self._current_step
        result = self._result

        if (self.balancer is not None
                and not isinstance(self.policy, NeverBalance)):
            bal = self.balancer.balance_step(
                old_parts, num_nodes, busy,
                work_per_sd=self._balance_work, active=alive)
            result.balance_results.append(bal)
            new_parts = bal.parts_after.copy()
            strategy = bal.strategy
            ratio_before = float(bal.imbalance_ratio_before)
            ratio_after = float(bal.imbalance_ratio_after)
            self._last_balance = step
        else:
            new_parts, _plans = evacuate_assignments(
                self.sd_grid, old_parts, alive, self._balance_work)
            strategy = "evacuate"
            alive_busy = [busy[n] for n in np.nonzero(alive)[0]]
            ratio_before = ratio_after = imbalance_ratio(alive_busy)

        # charge the data movement: live donors send their SDs as
        # ordinary migrations; the dead node's SDs are re-fetched from
        # the checkpoint store on the lead surviving node
        lead = int(cluster.active_node_ids()[0])
        migration_bytes = 0
        recovery_bytes = 0
        moved = np.nonzero(old_parts != new_parts)[0]
        for sd in moved:
            src = int(old_parts[sd])
            dst = int(new_parts[sd])
            nbytes = self.sd_grid.dp_count(int(sd)) * BYTES_PER_DP
            if alive[src]:
                fut = cluster.send(src, dst, nbytes)
                migration_bytes += nbytes
            else:
                fut = cluster.send(lead, dst, nbytes)
                self._recovery_futs[int(sd)] = fut
                if dst != lead:  # the store's own re-fetch is in-memory
                    recovery_bytes += nbytes
            self._pending_recovery_futs.append(fut)
        sds_evacuated = int(np.count_nonzero(old_parts == node_id))
        self.parts = new_parts
        self._plan = None  # ownership changed: recompile
        result.parts_history.append((step, self.parts.copy()))
        result.balance_events.append(BalanceEvent(
            step=step, strategy=strategy, sds_moved=int(len(moved)),
            migration_bytes=migration_bytes,
            imbalance_before=ratio_before, imbalance_after=ratio_after,
            recovery=True))
        result.recovery_events.append(RecoveryEvent(
            time=cluster.now, kind="fail", node=node_id, step=step,
            sds_evacuated=sds_evacuated, tasks_requeued=len(orphans),
            recovery_bytes=recovery_bytes))
        for task in orphans:
            self._requeue_orphan(task)
        # new measurement window: the old one mixes dead and live nodes
        cluster.reset_counters()
        cluster.rebase_busy_cursor(self._busy_cursor)

    def _on_join(self, event: ChurnEvent) -> None:
        """Provision the scheduled joiner; it is absorbed at the next
        balance step (the shared preamble seeds it with a frontier SD,
        the strategy routes its power-proportional share to it)."""
        if self._done:
            return
        rate = event.rate if event.rate > 0 else self._default_rate
        trace: SpeedTrace = ConstantSpeed(rate)
        windows = [(e.time, e.stop, e.factor)
                   for e in self.faults.straggles_of(event.node)]
        if windows:
            trace = StraggleSpeed(trace, windows)
        node_id = self.cluster.add_node(event.cores, trace)
        self._topology_dirty = True
        self._plan = None  # cluster grew: recompile against it
        self._result.recovery_events.append(RecoveryEvent(
            time=self.cluster.now, kind="join", node=node_id,
            step=self._current_step))

    def _requeue_orphan(self, task: SimTask) -> None:
        """Resubmit an orphaned task on its SD's new owner.

        Used both for the tasks returned by ``fail_node`` and (as the
        cluster's ``orphan_handler``) for tasks whose dependencies
        resolve after their node died.  The task restarts from scratch
        at ``(1 + recovery_penalty)`` times its work, gated on the SD's
        checkpoint re-fetch when one is in flight.
        """
        sd = int(task.tag)
        task.work *= 1.0 + self.faults.recovery_penalty
        dep = self._recovery_futs.get(sd)
        self.cluster.resubmit(task, int(self.parts[sd]),
                              deps=() if dep is None else (dep,))
