"""Classical (local) heat-equation solver — the eps -> 0 limit.

The paper's eq. (2) chooses the constant ``c`` so the nonlocal operator
converges to ``k Δu`` as the horizon shrinks.  This module provides the
classical 5-point finite-difference solver on the same grid, with the
same zero Dirichlet condition, so the library can demonstrate the limit
numerically (``examples/nonlocal_vs_local.py``) and tests can pin the
constant's calibration: for small eps the two solutions must approach
each other.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..mesh.grid import UniformGrid
from .exact import step_error
from .serial import SolveResult

__all__ = ["LocalHeatSolver", "local_stable_dt"]


def local_stable_dt(grid: UniformGrid, kappa: float = 1.0,
                    safety: float = 0.5) -> float:
    """Forward-Euler bound for the 5-point Laplacian: dt <= h^2/(4k)."""
    denom = 4.0 if grid.dim == 2 else 2.0
    return safety * grid.h ** 2 / (denom * kappa)


class LocalHeatSolver:
    """Forward-Euler integrator for ``du/dt = k Δu + b`` with u=0 outside D.

    The Laplacian uses the standard 5-point stencil (3-point in 1-D);
    points outside the array are zero, mirroring the nonlocal solver's
    treatment of ``Dc`` so the two solutions are directly comparable.
    """

    def __init__(self, grid: UniformGrid, kappa: float = 1.0,
                 source: Optional[Callable[[float], np.ndarray]] = None,
                 dt: Optional[float] = None) -> None:
        if kappa <= 0:
            raise ValueError(f"kappa must be positive, got {kappa}")
        self.grid = grid
        self.kappa = float(kappa)
        self.source = source
        self.dt = local_stable_dt(grid, kappa) if dt is None else float(dt)
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    def laplacian(self, u: np.ndarray) -> np.ndarray:
        """5-point Laplacian with zero-extension outside the array."""
        if u.shape != self.grid.shape:
            raise ValueError(f"field shape {u.shape} != grid {self.grid.shape}")
        h2 = self.grid.h ** 2
        padded = np.zeros((u.shape[0] + 2, u.shape[1] + 2))
        padded[1:-1, 1:-1] = u
        lap = (padded[1:-1, :-2] + padded[1:-1, 2:] - 2 * u)
        if self.grid.dim == 2:
            lap = lap + (padded[:-2, 1:-1] + padded[2:, 1:-1] - 2 * u)
        return lap / h2

    def step(self, u: np.ndarray, t: float) -> np.ndarray:
        """One forward-Euler step from time ``t``."""
        rhs = self.kappa * self.laplacian(u)
        if self.source is not None:
            rhs = rhs + self.source(t)
        return u + self.dt * rhs

    def run(self, u0: np.ndarray, num_steps: int,
            exact: Optional[Callable[[float], np.ndarray]] = None) -> SolveResult:
        """Integrate ``num_steps`` steps (same contract as SerialSolver)."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        u = np.array(u0, dtype=np.float64, copy=True)
        if u.shape != self.grid.shape:
            raise ValueError(f"u0 shape {u.shape} != grid {self.grid.shape}")
        times = [0.0]
        errors: Optional[List[float]] = None
        if exact is not None:
            errors = [step_error(self.grid, u, exact(0.0))]
        t = 0.0
        for _ in range(num_steps):
            u = self.step(u, t)
            t += self.dt
            times.append(t)
            if exact is not None:
                errors.append(step_error(self.grid, u, exact(t)))
        return SolveResult(u, times, errors)
