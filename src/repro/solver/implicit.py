"""Implicit (backward-Euler) integrator for the nonlocal heat equation.

The paper uses forward Euler, whose stability bound ``dt <= 1/(c V S)``
shrinks like ``eps^2``; for stiff configurations (small horizons, long
time windows) an unconditionally stable integrator is the standard
library extension.  Backward Euler solves

    (I - dt L) u^{k+1} = u^k + dt b(t_k)

with ``L`` assembled once as a sparse matrix and the system solved with
conjugate gradients (``I - dt L`` is symmetric positive definite because
``L`` is symmetric negative semidefinite — see the kernel tests).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import cg

from ..mesh.grid import UniformGrid
from .exact import step_error
from .kernel import assemble_sparse_operator
from .model import NonlocalHeatModel
from .serial import SolveResult

__all__ = ["ImplicitSolver"]


class ImplicitSolver:
    """Backward-Euler integrator; stable for any ``dt > 0``.

    Parameters
    ----------
    model, grid:
        Problem definition; the operator matrix is assembled eagerly
        (O(N * stencil) memory — intended for moderate grids).
    source, dt:
        As in the serial solver, but ``dt`` may exceed the explicit
        stability bound arbitrarily.
    rtol:
        Relative tolerance of the CG solve per step.
    """

    def __init__(self, model: NonlocalHeatModel, grid: UniformGrid,
                 source: Optional[Callable[[float], np.ndarray]] = None,
                 dt: float = 1e-3, rtol: float = 1e-10) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.model = model
        self.grid = grid
        self.source = source
        self.dt = float(dt)
        self.rtol = rtol
        L = assemble_sparse_operator(model, grid)
        n = grid.num_points
        self._system = (sp.identity(n, format="csr") - self.dt * L).tocsr()

    def step(self, u: np.ndarray, t: float) -> np.ndarray:
        """One backward-Euler step from time ``t``."""
        rhs = u.ravel().copy()
        if self.source is not None:
            rhs = rhs + self.dt * self.source(t + self.dt).ravel()
        sol, info = cg(self._system, rhs, x0=u.ravel(), rtol=self.rtol,
                       maxiter=2000)
        if info != 0:
            raise RuntimeError(f"CG failed to converge (info={info})")
        return sol.reshape(self.grid.shape)

    def run(self, u0: np.ndarray, num_steps: int,
            exact: Optional[Callable[[float], np.ndarray]] = None) -> SolveResult:
        """Integrate ``num_steps`` steps (same contract as SerialSolver)."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        u = np.array(u0, dtype=np.float64, copy=True)
        if u.shape != self.grid.shape:
            raise ValueError(f"u0 shape {u.shape} != grid {self.grid.shape}")
        times = [0.0]
        errors: Optional[List[float]] = None
        if exact is not None:
            errors = [step_error(self.grid, u, exact(0.0))]
        t = 0.0
        for _ in range(num_steps):
            u = self.step(u, t)
            t += self.dt
            times.append(t)
            if exact is not None:
                errors.append(step_error(self.grid, u, exact(t)))
        return SolveResult(u, times, errors)
