"""Manufactured exact solution and error norms (paper Sec. 3.2).

The paper validates the solver against

    w(t, x) = cos(2 pi t) sin(2 pi x1) sin(2 pi x2)    on D, 0 outside,

with the heat source ``b`` chosen (eq. 6) so ``u = w`` solves eq. (1)
exactly.  This module provides:

* :class:`ManufacturedProblem` — bundles ``u0``, ``b(t)``, and the exact
  field ``w(t)`` on a grid.  Two source modes:

  - ``"discrete"``: ``b = dw/dt - L_h w`` with the *discrete* operator;
    the numerical solution then matches ``w`` up to time-integration
    error only (used to isolate time error in tests).
  - ``"continuum"``: ``b = dw/dt - c ∫ J (w(y)-w(x)) dy`` with the
    continuum integral evaluated by oversampled midpoint quadrature on a
    refined grid (handles the boundary truncation of the ball exactly as
    the continuum does).  This is the paper's setting; the numerical
    error then shows the spatial-discretization convergence of Fig. 8.

* :func:`interior_multiplier` — the closed-form Fourier-multiplier value
  of the ball integral for interior points (Bessel ``J1`` in 2-D), used
  to cross-validate the quadrature.

* :func:`step_error` / :func:`total_error` — eq. (7).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.signal import oaconvolve
from scipy.special import j1

from ..mesh.grid import UniformGrid
from ..mesh.stencil import build_stencil
from .kernel import NonlocalOperator
from .model import NonlocalHeatModel

__all__ = ["ManufacturedProblem", "interior_multiplier", "step_error",
           "total_error"]


def _spatial_factor(X: np.ndarray, Y: Optional[np.ndarray], dim: int) -> np.ndarray:
    if dim == 1:
        return np.sin(2 * np.pi * X)
    return np.sin(2 * np.pi * X) * np.sin(2 * np.pi * Y)


def interior_multiplier(model: NonlocalHeatModel) -> float:
    """Closed-form ``∫_{B_eps} J(w(y)-w(x)) dy = m * w(x)`` for interior x.

    Only available for the constant influence function, where the ball
    integral of the plane-wave components of ``sin sin`` reduces to a
    Fourier multiplier: in 2-D with wavenumber ``kappa = 2 sqrt(2) pi``,

        m = 2 pi eps^2 J1(kappa eps) / (kappa eps)  -  pi eps^2,

    and in 1-D with ``kappa = 2 pi``: ``m = 2 sin(kappa eps)/kappa - 2 eps``.
    """
    if model.influence.name != "constant":
        raise ValueError("closed form requires the constant influence function")
    eps = model.epsilon
    if model.dim == 2:
        kappa = 2.0 * math.sqrt(2.0) * math.pi
        ball = 2.0 * math.pi * eps ** 2 * j1(kappa * eps) / (kappa * eps)
        return float(ball - math.pi * eps ** 2)
    kappa = 2.0 * math.pi
    return float(2.0 * math.sin(kappa * eps) / kappa - 2.0 * eps)


class ManufacturedProblem:
    """Exact solution, initial condition, and source on a specific grid.

    Parameters
    ----------
    model, grid:
        The continuum model and its discretization.
    source_mode:
        ``"discrete"`` or ``"continuum"`` (see module docstring).
    oversample:
        Quadrature refinement factor for the continuum source (the fine
        grid has spacing ``h / oversample``); quadrature error is
        ``O((h/oversample)^2)``, subdominant to the ``O(h^2)``
        discretization error being measured.
    """

    def __init__(self, model: NonlocalHeatModel, grid: UniformGrid,
                 source_mode: str = "continuum", oversample: int = 5) -> None:
        if source_mode not in ("discrete", "continuum"):
            raise ValueError(f"unknown source mode {source_mode!r}")
        if oversample < 1:
            raise ValueError(f"oversample must be >= 1, got {oversample}")
        if oversample % 2 == 0:
            # odd factors align fine cell centers exactly with coarse DPs
            # (even factors would introduce an O(h/q) sampling offset)
            oversample += 1
        self.model = model
        self.grid = grid
        self.source_mode = source_mode
        self.oversample = oversample
        if grid.dim == 1:
            self._space = _spatial_factor(grid.x_coords()[None, :], None, 1)
        else:
            X, Y = grid.meshgrid()
            self._space = _spatial_factor(X, Y, 2)
        if source_mode == "discrete":
            self._op = NonlocalOperator(model, grid)
            self._integral_of_space = self._op.apply(self._space)
        else:
            self._integral_of_space = self._continuum_integral_of_space()

    # -- exact fields ------------------------------------------------------
    def exact(self, t: float) -> np.ndarray:
        """``w(t)`` sampled at the DPs."""
        return math.cos(2 * math.pi * t) * self._space

    def exact_dt(self, t: float) -> np.ndarray:
        """``∂w/∂t (t)`` sampled at the DPs."""
        return -2 * math.pi * math.sin(2 * math.pi * t) * self._space

    def initial_condition(self) -> np.ndarray:
        """``u0 = w(0) = sin sin``."""
        return self._space.copy()

    def source(self, t: float) -> np.ndarray:
        """The manufactured heat source ``b(t)`` of eq. (6)."""
        # both modes: b = dw/dt - (nonlocal integral term applied to w(t));
        # time enters only through the cos/sin prefactors.
        return self.exact_dt(t) - math.cos(2 * math.pi * t) * self._integral_of_space

    # -- continuum quadrature ---------------------------------------------------
    def _continuum_integral_of_space(self) -> np.ndarray:
        """``c ∫_{B_eps(x)} J (s(y) - s(x)) dy`` at every DP, by quadrature.

        Evaluated on an ``oversample``-refined grid so the ball and the
        boundary truncation (``w = 0`` on ``Dc``) are resolved well below
        the coarse-grid discretization error.  The result is sampled back
        at the coarse DPs (every ``oversample``-th fine cell center is
        exactly a coarse DP when ``oversample`` is odd-centered; we use
        the fine cell whose center is nearest, which for integer factors
        aligns exactly at offset ``(oversample-1)//2`` for odd factors —
        to keep alignment exact for any factor we evaluate the fine field
        at fine cell centers and take the fine cell containing each
        coarse DP center, then correct by evaluating ``s`` exactly at the
        coarse DP for the local term).
        """
        q = self.oversample
        grid = self.grid
        fine_h = grid.h / q
        model = self.model
        # fine stencil of the ball with J weights
        fine_stencil = build_stencil(fine_h, model.epsilon, model.influence,
                                     dim=model.dim)
        mask = fine_stencil.mask
        cell = fine_h if model.dim == 1 else fine_h * fine_h

        if model.dim == 1:
            xf = (np.arange(grid.nx * q) + 0.5) * fine_h
            sf = _spatial_factor(xf[None, :], None, 1)
        else:
            xf = (np.arange(grid.nx * q) + 0.5) * fine_h
            yf = (np.arange(grid.ny * q) + 0.5) * fine_h
            Xf, Yf = np.meshgrid(xf, yf)
            sf = _spatial_factor(Xf, Yf, 2)

        # zero-extension outside D is native to 'same' convolution
        conv = oaconvolve(sf, mask, mode="same")
        ball_weight = fine_stencil.weight_sum  # counts only in-ball cells
        integral_fine = cell * (conv - ball_weight * sf)

        # sample the fine field at (the fine cells containing) coarse DPs
        if q == 1:
            sampled = integral_fine
        else:
            # coarse DP center (i+0.5)h lies in fine cell i*q + q//2 for
            # even q (center between cells -> take lower) and exactly at
            # the center of fine cell i*q + (q-1)//2 for odd q.
            idx = (np.arange(grid.nx) * q + (q - 1) // 2)
            if model.dim == 1:
                sampled = integral_fine[:, idx]
            else:
                idy = (np.arange(grid.ny) * q + (q - 1) // 2)
                sampled = integral_fine[np.ix_(idy, idx)]
        return model.c * sampled


def step_error(grid: UniformGrid, numeric: np.ndarray,
               exact: np.ndarray) -> float:
    """``e_k = h^d sum_i |u_exact - u_num|^2`` — eq. (7) at one step."""
    if numeric.shape != exact.shape:
        raise ValueError(f"shape mismatch {numeric.shape} vs {exact.shape}")
    hd = grid.h if grid.dim == 1 else grid.h ** 2
    diff = numeric - exact
    return float(hd * np.sum(diff * diff))


def total_error(errors) -> float:
    """``e = sum_k e_k`` — the quantity plotted in the paper's Fig. 8."""
    return float(np.sum(np.asarray(list(errors), dtype=np.float64)))
