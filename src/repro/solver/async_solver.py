"""Shared-memory futurized solver (paper Sec. 8.2).

The mesh is divided into SDs that are updated by asynchronous tasks on a
thread pool (:class:`repro.amt.executor.TaskExecutor`) sharing the global
temperature arrays — the paper's "multi-threaded version using
asynchronous execution, e.g. futurization".  Each timestep submits one
task per SD; tasks read the previous-step array (including their ghost
halo, all local in shared memory) and write their block of the next-step
array, so tasks within a step are data-race free by construction.

NumPy's convolution releases the GIL for the bulk of each task, so this
runtime exhibits genuine parallelism; the *deterministic* scaling studies
for Figs. 9–10 nevertheless run on the simulated single node (see
``benchmarks/``) to keep the plotted shapes machine-independent.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..amt.executor import TaskExecutor
from ..amt.future import when_all
from ..mesh.grid import UniformGrid
from ..mesh.subdomain import SubdomainGrid
from .kernel import NonlocalOperator, check_operator_matches, stable_dt
from .model import NonlocalHeatModel
from .serial import SolveResult
from .exact import step_error

__all__ = ["AsyncSolver"]


class AsyncSolver:
    """Futurized SD-parallel forward-Euler integrator.

    Parameters
    ----------
    model, grid:
        Problem definition and discretization.
    sd_grid:
        SD decomposition of the mesh (the unit of tasking).
    num_threads:
        Worker threads ("CPUs" in the paper's Figs. 9–10).
    source, dt:
        As in :class:`repro.solver.serial.SerialSolver`.
    operator, backend:
        Optional prebuilt :class:`NonlocalOperator`, or the kernel
        backend name to build one with (see
        :mod:`repro.solver.backends`).
    """

    def __init__(self, model: NonlocalHeatModel, grid: UniformGrid,
                 sd_grid: SubdomainGrid, num_threads: int = 1,
                 source: Optional[Callable[[float], np.ndarray]] = None,
                 dt: Optional[float] = None,
                 operator: Optional[NonlocalOperator] = None,
                 backend: str = "auto") -> None:
        if (sd_grid.mesh_nx, sd_grid.mesh_ny) != (grid.nx, grid.ny):
            raise ValueError(
                f"SD grid covers {sd_grid.mesh_nx}x{sd_grid.mesh_ny} "
                f"but mesh is {grid.nx}x{grid.ny}")
        self.model = model
        self.grid = grid
        self.sd_grid = sd_grid
        if operator is None:
            operator = NonlocalOperator(model, grid, backend=backend)
        else:
            check_operator_matches(operator, model, grid)
        self.operator = operator
        self.source = source
        self.dt = (stable_dt(model, grid, stencil=operator.stencil)
                   if dt is None else float(dt))
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        self.num_threads = num_threads

    def _sd_task(self, sd: int, u_old: np.ndarray, u_new: np.ndarray,
                 b: Optional[np.ndarray], t: float) -> None:
        """Update one SD block: read halo from ``u_old``, write ``u_new``."""
        R = self.operator.radius
        rect = self.sd_grid.rect(sd)
        halo = self.sd_grid.halo_rect(sd, R)
        # assemble the zero-extended padded block
        padded = np.zeros((rect.height + 2 * R, rect.width + 2 * R))
        dy0 = halo.y0 - (rect.y0 - R)
        dx0 = halo.x0 - (rect.x0 - R)
        padded[dy0:dy0 + halo.height, dx0:dx0 + halo.width] = u_old[halo.slices()]
        rhs = self.operator.apply_block(padded)
        if b is not None:
            rhs = rhs + b[rect.slices()]
        u_new[rect.slices()] = u_old[rect.slices()] + self.dt * rhs

    def run(self, u0: np.ndarray, num_steps: int,
            exact: Optional[Callable[[float], np.ndarray]] = None) -> SolveResult:
        """Integrate ``num_steps`` steps; same contract as the serial solver."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        u_old = np.array(u0, dtype=np.float64, copy=True)
        if u_old.shape != self.grid.shape:
            raise ValueError(f"u0 shape {u_old.shape} != grid {self.grid.shape}")
        u_new = np.empty_like(u_old)
        times = [0.0]
        errors: Optional[List[float]] = None
        if exact is not None:
            errors = [step_error(self.grid, u_old, exact(0.0))]
        t = 0.0
        sds = list(range(self.sd_grid.num_subdomains))
        with TaskExecutor(self.num_threads, name="async-solver") as ex:
            for _ in range(num_steps):
                b = None if self.source is None else self.source(t)
                futs = [ex.async_(self._sd_task, sd, u_old, u_new, b, t)
                        for sd in sds]
                for f in when_all(futs).get():
                    f.get()  # surface any task exception
                u_old, u_new = u_new, u_old
                t += self.dt
                times.append(t)
                if exact is not None:
                    errors.append(step_error(self.grid, u_old, exact(t)))
        return SolveResult(u_old.copy(), times, errors)
