"""Performance counters modelled on ``hpx::performance_counters``.

The load balancer (paper Sec. 7) polls exactly one counter —
``busy_time`` per node — and resets all counters after each balancing
iteration (Algorithm 1, line 35) so every node's busy fraction is measured
over the same window.  This module provides:

* :class:`Counter` — monotone accumulator with an observation window
  (``value`` since the last reset, ``total`` since creation).
* :class:`BusyTimeCounter` — adds interval tracking so a node can mark
  ``begin_work``/``end_work`` spans; overlapping spans from multiple cores
  accumulate additively, mirroring HPX's per-thread aggregation.
* :class:`CounterRegistry` — AGAS-backed lookup and the ``reset_all``
  bulk operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .agas import AddressSpace

__all__ = ["Counter", "BusyTimeCounter", "CounterRegistry", "BUSY_TIME"]

#: Canonical counter kind polled by the load balancer.
BUSY_TIME = "busy_time"


class Counter:
    """A resettable accumulator.

    ``value()`` reports the accumulation since the most recent
    :meth:`reset`; ``total()`` reports the lifetime accumulation.  The
    distinction matters: Algorithm 1 computes node power from the *window*
    value so that stale history does not mask recent slowdowns.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._window = 0.0
        self._lifetime = 0.0

    def add(self, amount: float) -> None:
        """Accumulate ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._window += amount
        self._lifetime += amount

    def value(self) -> float:
        """Accumulation since the last reset."""
        return self._window

    def total(self) -> float:
        """Lifetime accumulation (never reset)."""
        return self._lifetime

    def reset(self, now: Optional[float] = None) -> None:
        """Zero the observation window (lifetime total is preserved).

        ``now`` is the virtual time the new window starts at.  The base
        counter has no notion of in-flight work, so it ignores it;
        :class:`BusyTimeCounter` uses it to clip open work intervals at
        the window boundary.
        """
        self._window = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name} window={self._window:.6g}>"


class BusyTimeCounter(Counter):
    """Busy-time accumulator fed by explicit work intervals.

    Each simulated core (or real worker thread) brackets task execution
    with ``begin_work(t)`` / ``end_work(t)``; the counter accumulates the
    interval lengths.  Concurrent intervals add up — two cores busy for
    one second contribute two busy-seconds, exactly like summing HPX's
    per-worker idle-rate counters.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._open: Dict[int, float] = {}
        self._next_token = 0

    def begin_work(self, now: float) -> int:
        """Open a work interval at time ``now``; returns a token."""
        token = self._next_token
        self._next_token += 1
        self._open[token] = now
        return token

    def end_work(self, now: float, token: int) -> None:
        """Close the interval identified by ``token`` at time ``now``."""
        try:
            start = self._open.pop(token)
        except KeyError:
            raise ValueError(f"unknown work token {token}") from None
        if now < start:
            raise ValueError(f"end_work at t={now} before begin at t={start}")
        self.add(now - start)

    def open_intervals(self) -> int:
        """Number of currently open work intervals (busy cores)."""
        return len(self._open)

    def reset(self, now: Optional[float] = None) -> None:
        """Zero the window, clipping open intervals at ``now``.

        A core that is mid-task when the balancer resets counters
        (Algorithm 1 line 35) has an open interval straddling the window
        boundary.  The span *before* the reset belongs to the old
        window, so each open interval is credited up to ``now`` into the
        closing window (keeping the lifetime total exact) and its start
        is re-based to ``now`` — the new window measures only work done
        inside it.  Without the clip, ``end_work`` after the reset
        charged the entire pre-reset span to the new window, inflating
        the eq.-8 node power of any node busy at the poll.

        ``now`` is required whenever intervals are open; a plain
        ``reset()`` stays valid for quiescent counters.
        """
        if self._open:
            if now is None:
                raise ValueError(
                    f"{self.name}: reset with {len(self._open)} open work "
                    f"interval(s) needs the current time to clip them")
            for token, start in self._open.items():
                if now < start:
                    raise ValueError(
                        f"{self.name}: reset at t={now} before open "
                        f"interval start t={start}")
                # flows through add() so the lifetime total stays exact
                self.add(now - start)
                self._open[token] = now
        super().reset(now)


class CounterRegistry:
    """Registry of named counters, resolvable through AGAS.

    Counter names follow the HPX convention
    ``/counters/<locality>/<kind>`` (e.g. ``/counters/node2/busy_time``).
    """

    PREFIX = "/counters"

    def __init__(self, agas: Optional[AddressSpace] = None) -> None:
        self.agas = agas if agas is not None else AddressSpace()
        # incremental kind index: the balancer resets all counters every
        # step (Algorithm 1 line 35), and an AGAS prefix scan with a
        # name split per counter is O(total counters x name length) per
        # poll — noticeable at 512+ nodes.  Counters created through the
        # registry are indexed here at creation instead.
        self._by_kind: Dict[str, List[Counter]] = {}

    def _name(self, locality: str, kind: str) -> str:
        return f"{self.PREFIX}/{locality}/{kind}"

    def _register(self, counter: Counter, kind: str) -> None:
        self.agas.register(counter.name, counter)  # raises on duplicates
        self._by_kind.setdefault(kind, []).append(counter)

    def create_busy_time(self, locality: str) -> BusyTimeCounter:
        """Create and register the busy-time counter for ``locality``."""
        counter = BusyTimeCounter(self._name(locality, BUSY_TIME))
        self._register(counter, BUSY_TIME)
        return counter

    def create(self, locality: str, kind: str) -> Counter:
        """Create and register a generic counter."""
        counter = Counter(self._name(locality, kind))
        self._register(counter, kind)
        return counter

    def get(self, locality: str, kind: str) -> Counter:
        """Resolve a counter; raises ``AgasError`` if missing."""
        return self.agas.resolve(self._name(locality, kind))

    def busy_time(self, locality: str) -> float:
        """Window busy time for ``locality`` (convenience accessor)."""
        return self.get(locality, BUSY_TIME).value()

    def all_of_kind(self, kind: str) -> List[Counter]:
        """All registry-created counters of ``kind``, in creation order.

        Creation order is node-id order everywhere counters are made
        (``node0``, ``node1``, …, ``node10``, …).  A name sort would put
        ``node10`` before ``node2`` once a cluster reaches ten nodes,
        silently misaligning any per-node listing built from it.
        """
        return list(self._by_kind.get(kind, ()))

    def reset_all(self, kind: Optional[str] = None,
                  now: Optional[float] = None) -> int:
        """Reset every counter (optionally only of ``kind``); return count.

        This is Algorithm 1 line 35:
        ``reset_all(hpx::performance_counters::busy_time)``.  Uses the
        incremental kind index rather than an AGAS prefix scan, so the
        per-step reset is O(counters of the kind) with no name parsing.

        ``now`` is the virtual time the new measurement window starts
        at; busy-time counters use it to clip work intervals that are
        open at the reset (see :meth:`BusyTimeCounter.reset`) and it is
        required when any interval is open.
        """
        count = 0
        if kind is not None:
            kinds = (kind,)
        else:
            kinds = tuple(self._by_kind)
        for k in kinds:
            for counter in self._by_kind.get(k, ()):
                counter.reset(now)
                count += 1
        return count
