"""Simulated distributed cluster with real computation and virtual time.

This is the substitution for the paper's HPX/MPI Skylake cluster (see
DESIGN.md).  The key idea: tasks submitted to a :class:`SimCluster` carry
both

* a **work amount** (abstract work units, e.g. DP-updates × stencil size)
  that determines how long the task occupies a simulated core, and
* an optional **action** (a real Python callable, typically a NumPy
  kernel) that executes when the task completes, so the distributed solver
  produces genuinely correct temperatures while the clock is virtual.

Nodes have a bounded core count and a per-core speed *trace* (work units
per virtual second, possibly time-varying — that is how heterogeneous and
time-varying compute capacity from the paper's Sec. 4 challenge 4 enters).
Messages pay ``latency + bytes/bandwidth`` and serialize on the sender's
egress link.  Busy time is accumulated into
:class:`repro.amt.counters.BusyTimeCounter` instances registered in AGAS,
which is exactly what the load balancer polls.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_right
from collections import deque
from typing import (Any, Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..costmodel import FLAT, WorkItem
from .agas import AddressSpace
from .counters import BusyTimeCounter, CounterRegistry
from .des import Event, SimulationError, Simulator
from .future import _MULTI, Future, LocalFuture, local_when_all

__all__ = ["SpeedTrace", "ConstantSpeed", "PiecewiseSpeed", "RampSpeed",
           "StraggleSpeed", "Network", "SimNode", "SimTask", "SimCluster",
           "BusyCursor"]


# ---------------------------------------------------------------------------
# speed traces
# ---------------------------------------------------------------------------

class SpeedTrace:
    """Per-core compute rate as a function of virtual time.

    Subclasses implement :meth:`rate` and :meth:`time_to_complete`.  The
    latter answers "starting at ``t0``, how long until ``work`` units are
    done?", i.e. it inverts the integral of the rate.  Keeping this on the
    trace lets piecewise traces integrate exactly instead of sampling the
    rate at task start.
    """

    def rate(self, t: float) -> float:
        """Instantaneous work units per second at virtual time ``t``."""
        raise NotImplementedError

    def time_to_complete(self, work: float, t0: float) -> float:
        """Seconds to finish ``work`` units when starting at ``t0``."""
        raise NotImplementedError

    def work_until(self, t0: float, t1: float) -> float:
        """Work units completed over ``[t0, t1]`` (the rate's integral).

        The inverse view of :meth:`time_to_complete`; needed by
        :class:`StraggleSpeed` to compose transient slowdown windows
        onto *any* base trace exactly (no sampling, schedules stay
        deterministic).
        """
        raise NotImplementedError


class ConstantSpeed(SpeedTrace):
    """A fixed rate; the common case for homogeneous scaling studies."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = float(rate)

    def rate(self, t: float) -> float:
        return self._rate

    def time_to_complete(self, work: float, t0: float) -> float:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        return work / self._rate

    def work_until(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
        return (t1 - t0) * self._rate


class PiecewiseSpeed(SpeedTrace):
    """Piecewise-constant rate over ``[t_i, t_{i+1})`` intervals.

    Used to emulate nodes whose capacity changes over time (external jobs
    being scheduled alongside ours — the paper's motivating scenario for
    dynamic balancing).  Completion times integrate the rate exactly
    across breakpoints.

    Parameters
    ----------
    breakpoints:
        Strictly increasing times ``t_1 < t_2 < ...``; the rate before
        ``t_1`` is ``rates[0]``, between ``t_i`` and ``t_{i+1}`` it is
        ``rates[i]``, and after the last breakpoint ``rates[-1]``.
    rates:
        ``len(breakpoints) + 1`` positive rates.
    """

    def __init__(self, breakpoints: Sequence[float], rates: Sequence[float]) -> None:
        if len(rates) != len(breakpoints) + 1:
            raise ValueError("need len(rates) == len(breakpoints) + 1")
        if any(r <= 0 for r in rates):
            raise ValueError("all rates must be positive")
        if any(b2 <= b1 for b1, b2 in zip(breakpoints, breakpoints[1:])):
            raise ValueError("breakpoints must be strictly increasing")
        self._bp = [float(b) for b in breakpoints]
        self._rates = [float(r) for r in rates]

    def rate(self, t: float) -> float:
        # index of the first breakpoint > t; past the last one this is
        # len(breakpoints), i.e. rates[-1]
        return self._rates[bisect_right(self._bp, t)]

    def time_to_complete(self, work: float, t0: float) -> float:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        remaining = float(work)
        t = float(t0)
        bp = self._bp
        # walk segments from the first breakpoint past t0, consuming work
        # at each segment's rate (bisect replaces the linear skip; the
        # arithmetic per consumed segment is unchanged)
        for i in range(bisect_right(bp, t), len(bp)):
            b = bp[i]
            seg_rate = self._rates[i]
            seg_capacity = (b - t) * seg_rate
            if remaining <= seg_capacity:
                return (t + remaining / seg_rate) - t0
            remaining -= seg_capacity
            t = b
        return (t + remaining / self._rates[-1]) - t0

    def work_until(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
        done = 0.0
        t = float(t0)
        bp = self._bp
        for i in range(bisect_right(bp, t), len(bp)):
            b = bp[i]
            if t1 <= b:
                return done + (t1 - t) * self._rates[i]
            done += (b - t) * self._rates[i]
            t = b
        return done + (t1 - t) * self._rates[-1]


class RampSpeed(SpeedTrace):
    """Linear capacity drift: ``rate0`` before ``t0``, ramping linearly
    to ``rate1`` over ``[t0, t1]``, ``rate1`` after.

    Models *gradually* shifting node capacity (a co-located job slowly
    scaling up, thermal drift) as opposed to :class:`PiecewiseSpeed`'s
    step changes — the workload where one-shot balancing decisions age
    badly and adaptive re-balancing pays off.  Completion times
    integrate the ramp exactly (closed form per segment), so schedules
    remain deterministic and machine-independent.
    """

    def __init__(self, rate0: float, rate1: float, t0: float, t1: float) -> None:
        if rate0 <= 0 or rate1 <= 0:
            raise ValueError("rates must be positive")
        if not 0 <= t0 < t1:
            raise ValueError(f"need 0 <= t0 < t1, got [{t0}, {t1}]")
        self.rate0 = float(rate0)
        self.rate1 = float(rate1)
        self.t0 = float(t0)
        self.t1 = float(t1)
        self._slope = (self.rate1 - self.rate0) / (self.t1 - self.t0)

    def rate(self, t: float) -> float:
        if t <= self.t0:
            return self.rate0
        if t >= self.t1:
            return self.rate1
        return self.rate0 + self._slope * (t - self.t0)

    def time_to_complete(self, work: float, t0: float) -> float:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        remaining = float(work)
        t = float(t0)
        # flat head segment
        if t < self.t0:
            head = (self.t0 - t) * self.rate0
            if remaining <= head:
                return (t + remaining / self.rate0) - t0
            remaining -= head
            t = self.t0
        # ramp segment: integral of r(a) + slope*x over x in [0, dt]
        if t < self.t1 and self._slope != 0.0:
            r_here = self.rate(t)
            ramp_capacity = 0.5 * (r_here + self.rate1) * (self.t1 - t)
            if remaining <= ramp_capacity:
                # solve slope/2 * x^2 + r_here * x = remaining for x > 0
                disc = r_here * r_here + 2.0 * self._slope * remaining
                x = (math.sqrt(disc) - r_here) / self._slope
                return (t + x) - t0
            remaining -= ramp_capacity
            t = self.t1
        elif t < self.t1:  # degenerate flat "ramp" (rate0 == rate1)
            cap = (self.t1 - t) * self.rate0
            if remaining <= cap:
                return (t + remaining / self.rate0) - t0
            remaining -= cap
            t = self.t1
        return (t + remaining / self.rate1) - t0

    def work_until(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
        done = 0.0
        t = float(t0)
        if t < self.t0:
            end = min(t1, self.t0)
            done += (end - t) * self.rate0
            t = end
        if t < t1 and t < self.t1:
            end = min(t1, self.t1)
            # trapezoid: the ramp is linear between t and end
            done += 0.5 * (self.rate(t) + self.rate(end)) * (end - t)
            t = end
        if t < t1:
            done += (t1 - t) * self.rate1
        return done


class StraggleSpeed(SpeedTrace):
    """A base trace scaled down over transient straggle windows.

    During each window ``[start, stop)`` the node delivers ``factor``
    times the base trace's rate — the fault model's straggler
    (DESIGN.md substitution 4).  Composition is exact: completion times
    invert the scaled integral segment by segment using the base
    trace's own :meth:`SpeedTrace.work_until` / ``time_to_complete``,
    so arbitrary bases (constant, piecewise, ramp, even another
    straggle wrapper) keep bit-identical, machine-independent
    schedules.

    Parameters
    ----------
    base:
        The unperturbed speed trace.
    windows:
        ``(start, stop, factor)`` triples; must be non-overlapping with
        ``start < stop`` and ``factor`` in ``(0, 1]``.  Stored sorted
        by start time.
    """

    def __init__(self, base: SpeedTrace,
                 windows: Sequence[tuple]) -> None:
        self.base = base
        wins = sorted((float(a), float(b), float(f)) for a, b, f in windows)
        for a, b, f in wins:
            if not b > a:
                raise ValueError(f"straggle window needs stop > start, "
                                 f"got [{a}, {b})")
            if not 0 < f <= 1:
                raise ValueError(f"straggle factor must be in (0, 1], got {f}")
        for (_, b1, _), (a2, _, _) in zip(wins, wins[1:]):
            if a2 < b1:
                raise ValueError("straggle windows must not overlap")
        self.windows = wins
        self._starts = [a for a, _, _ in wins]
        # non-overlap gives a1 < b1 <= a2 < b2 < ..., so the interleaved
        # edge list is already sorted (b_i == a_{i+1} duplicates kept)
        self._edges: List[float] = []
        for a, b, _ in wins:
            self._edges.append(a)
            self._edges.append(b)

    def _factor_at(self, t: float) -> float:
        i = bisect_right(self._starts, t) - 1
        if i >= 0 and t < self.windows[i][1]:
            return self.windows[i][2]
        return 1.0

    def rate(self, t: float) -> float:
        return self.base.rate(t) * self._factor_at(t)

    def _boundaries_after(self, t: float) -> List[float]:
        return self._edges[bisect_right(self._edges, t):]

    def work_until(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
        done = 0.0
        t = float(t0)
        for edge in self._boundaries_after(t):
            if edge >= t1:
                break
            done += self.base.work_until(t, edge) * self._factor_at(t)
            t = edge
        return done + self.base.work_until(t, t1) * self._factor_at(t)

    def time_to_complete(self, work: float, t0: float) -> float:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        remaining = float(work)
        t = float(t0)
        for edge in self._boundaries_after(t):
            f = self._factor_at(t)
            capacity = self.base.work_until(t, edge) * f
            if remaining <= capacity:
                # finish within this segment: the base must deliver
                # remaining / f of unscaled work starting at t
                return (t + self.base.time_to_complete(remaining / f, t)) - t0
            remaining -= capacity
            t = edge
        f = self._factor_at(t)
        return (t + self.base.time_to_complete(remaining / f, t)) - t0


# ---------------------------------------------------------------------------
# network
# ---------------------------------------------------------------------------

class Network:
    """Latency + bandwidth message-cost model with per-node egress links.

    ``transfer_time(nbytes) = latency + nbytes / bandwidth``; concurrent
    sends from the same node additionally serialize on that node's egress
    link (a NIC can only push one message at a time), which reproduces the
    "boundary SDs grow with node count ⇒ slight roll-off" effect visible
    in the paper's Fig. 13.

    Intra-node messages are free and instantaneous: the paper's SDs on the
    same node share memory.

    This is the legacy single-tier model; the pluggable replacement is
    :mod:`repro.amt.topology` (DESIGN.md substitution 5), whose
    :class:`repro.amt.topology.FlatTopology` is bit-for-bit equivalent.
    ``Network`` keeps the same duck-typed surface the cluster relies on
    (``plan_send`` / ``reset`` / ``release_node`` / ``rack_of`` /
    ``bytes_by_class``), so either may be passed as
    ``SimCluster(network=...)``.
    """

    def __init__(self, latency: float = 5e-6, bandwidth: float = 1.25e9,
                 serialize_egress: bool = True) -> None:
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.serialize_egress = serialize_egress
        self._egress_free: Dict[int, float] = {}
        self.bytes_sent = 0
        self.messages_sent = 0
        self.bytes_by_class: Dict[str, int] = {}

    def wire_time(self, nbytes: int) -> float:
        """Pure serialization time of ``nbytes`` on the wire."""
        return nbytes / self.bandwidth

    def plan_send(self, src: int, dst: int, nbytes: int, now: float) -> float:
        """Account a message and return its virtual delivery time."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if src == dst:
            return now
        self.bytes_sent += nbytes
        self.messages_sent += 1
        self.bytes_by_class["remote"] = (
            self.bytes_by_class.get("remote", 0) + nbytes)
        start = now
        if self.serialize_egress:
            start = max(now, self._egress_free.get(src, 0.0))
            self._egress_free[src] = start + self.wire_time(nbytes)
        return start + self.latency + self.wire_time(nbytes)

    def reset(self) -> None:
        """Clear all per-run state: egress backlog and byte counters.

        The distributed solver calls this at run start, so a network
        instance reused across successive solvers cannot delay the
        second run's first sends with the previous run's egress
        backlog.
        """
        self._egress_free.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the byte/message counters (egress state is kept)."""
        self.bytes_sent = 0
        self.messages_sent = 0
        self.bytes_by_class = {}

    def release_node(self, node: int) -> None:
        """Drop ``node``'s egress reservation (the node failed).

        Without this a same-id bookkeeping reuse would inherit the dead
        node's ghost backlog and delay its first sends.
        """
        self._egress_free.pop(node, None)

    def rack_of(self, node: int) -> int:
        """Everything shares one rack in the flat model."""
        return 0


# ---------------------------------------------------------------------------
# nodes and tasks
# ---------------------------------------------------------------------------

class SimTask:
    """A unit of simulated work bound to a node.

    The task's :attr:`future` resolves — at the task's virtual completion
    time — with the return value of ``action()`` (or ``None``).

    ``tag`` is an opaque owner-supplied marker (the distributed solver
    stores the SD id) so that a task orphaned by a node failure can be
    requeued on the SD's new owner.  ``node_id`` is rewritten when the
    cluster resubmits an orphan.
    """

    __slots__ = ("node_id", "work", "action", "future", "label", "tag")

    def __init__(self, node_id: int, work: float,
                 action: Optional[Callable[[], Any]], label: str,
                 tag: Any = None) -> None:
        self.node_id = node_id
        self.work = float(work)
        self.action = action
        # single-threaded DES: the lock-free future variant
        self.future: Future = LocalFuture()
        self.label = label
        self.tag = tag


class _Wave:
    """A batch of queued tasks completed by one DES event.

    When a single-core node with a :class:`ConstantSpeed` trace holds a
    run of queued action-free tasks, their completion times are a pure
    prefix sum ``t_i = t_{i-1} + work_i/rate`` — no event between them
    can change the node's schedule.  The cluster therefore pops the whole
    run, computes the times vectorized (``np.add.accumulate`` performs
    the identical left-to-right float64 additions, so the times are
    bit-identical to the per-event loop) and schedules *one* event at the
    wave's end instead of ``k`` events.  Busy time is accounted per task
    with the same telescoping deltas the per-event path produces.

    Deviations from the per-event path are limited to bookkeeping that is
    invisible to the solver: intermediate task futures resolve (in task
    order) at the wave's end rather than at each ``t_i``, and event
    sequence numbers differ.  A failure or a ``run(until=...)`` boundary
    unwinds the wave back into exact per-task state (see
    ``SimCluster._flush_wave`` / ``_materialize_waves``).
    """

    __slots__ = ("tasks", "times", "start", "event")

    def __init__(self, tasks: List[SimTask], times: List[float],
                 start: float, event: Event) -> None:
        self.tasks = tasks
        self.times = times
        self.start = start
        self.event = event


class _TaskGroup:
    """A cross-node batch of action-free tasks completed by one event.

    :meth:`SimCluster.submit_group` places one FIFO *pending entry* per
    node — ``(start, finish, work, group)`` with ``start`` tail-scheduled
    after the node's previous entry — and schedules a single DES event at
    the group's latest ``finish``.  ``remaining`` counts unretired
    entries; ``fire`` runs inside the group's own event (or, after a
    ``run(until=...)`` cut materializes the entries back into per-task
    form, when the last reconstructed task completes) — it is either
    the barrier future's resolver or the caller's direct completion
    callback, so barriers fire at exactly the virtual time the
    per-event path produces.
    """

    __slots__ = ("fire", "remaining", "event")

    def __init__(self, fire, remaining: int) -> None:
        self.fire = fire
        self.remaining = remaining
        self.event: Optional[Event] = None


class SimNode:
    """A simulated compute node: bounded cores + a speed trace.

    Scheduling is FIFO per node: ready tasks wait in a queue and occupy a
    core for ``trace.time_to_complete(work, start)`` virtual seconds.  The
    node's :class:`BusyTimeCounter` accumulates core-seconds of execution.
    """

    def __init__(self, node_id: int, cores: int, trace: SpeedTrace,
                 counter: BusyTimeCounter, memory=None) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.node_id = node_id
        self.cores = cores
        self.trace = trace
        self.counter = counter
        #: the node's :class:`repro.costmodel.MemoryHierarchy` (or
        #: ``None``): what hierarchy-aware cost models price tasks
        #: against; inert under the flat model
        self.memory = memory
        #: monotone count of busy-time credits (task completions, wave
        #: flushes, group retirements) since construction — the change
        #: detector behind :meth:`SimCluster.poll_busy`'s cursor
        self.busy_marks = 0
        self.free_cores = cores
        self.ready: Deque[SimTask] = deque()
        self.tasks_completed = 0
        self.work_completed = 0.0
        #: ``False`` once the node has failed (permanently; a "rejoin"
        #: is a fresh node with a new id)
        self.alive = True
        #: in-flight tasks: task -> (busy-counter token, completion
        #: Event), so a failure can truncate busy time and cancel the
        #: scheduled completions deterministically
        self.running: Dict[SimTask, tuple] = {}
        #: in-flight batched task wave (single-core ConstantSpeed fast
        #: path), or ``None``
        self.wave: Optional[_Wave] = None
        #: FIFO of tail-scheduled group entries
        #: ``(start, finish, work, group)`` (see
        #: :meth:`SimCluster.submit_group`); finishes are monotone
        #: non-decreasing, so the completed prefix is always a prefix
        self.pending: Deque[tuple] = deque()
        #: virtual finish time of the last pending entry — the node's
        #: schedule horizon for tail-scheduling the next group entry
        self.tail = 0.0
        #: static half of group-fast-path eligibility, folded with the
        #: constant rate: ``trace._rate`` when the node is single-core
        #: with a :class:`ConstantSpeed` trace, else 0.0 (``cores`` and
        #: ``trace`` are assign-once, so this never goes stale)
        self.group_rate = (trace._rate
                           if cores == 1 and type(trace) is ConstantSpeed
                           else 0.0)

    def busy_time(self) -> float:
        """Window busy core-seconds (since last counter reset)."""
        return self.counter.value()


class BusyCursor:
    """Per-caller state for incremental busy-time polls.

    Pairs a last-seen :attr:`SimNode.busy_marks` with the window value
    read at that mark, per node.  :meth:`SimCluster.poll_busy` re-reads
    only nodes whose marks moved (or that hold un-flushed group
    entries) — every other node's cached float *is* the value a full
    sweep would read, bit for bit, because nothing touched its counter.
    Create one cursor per measurement consumer (the balancer keeps its
    own) and realign it with :meth:`SimCluster.rebase_busy_cursor`
    after every ``reset_counters``.
    """

    __slots__ = ("marks", "values")

    def __init__(self) -> None:
        self.marks: List[int] = []
        self.values: List[float] = []

    def _ensure(self, n: int) -> None:
        # joiners enter with an impossible mark so their first poll
        # always reads the counter
        while len(self.marks) < n:
            self.marks.append(-1)
            self.values.append(0.0)


class SimCluster:
    """The distributed-machine model: nodes + network + virtual clock.

    Typical usage by the distributed solver::

        cluster = SimCluster(num_nodes=4, cores_per_node=1)
        fut = cluster.submit(node_id=2, work=1e6, action=kernel)
        msg = cluster.send(src=0, dst=1, nbytes=8*512, payload=ghost_array)
        cluster.run()            # drain virtual time
        ghost = msg.get()        # delivered payload

    Determinism: with identical submission order, the virtual schedule is
    bit-identical across runs (no wall-clock coupling anywhere).
    """

    def __init__(self, num_nodes: int, cores_per_node: int = 1,
                 speeds: Optional[Sequence[SpeedTrace]] = None,
                 network: Optional[Network] = None,
                 agas: Optional[AddressSpace] = None,
                 wave_batching: Optional[bool] = None,
                 default_rate: float = 1.0,
                 cost_model=None, memory=None) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if default_rate <= 0:
            raise ValueError(
                f"default_rate must be > 0, got {default_rate}")
        #: flops/s a node delivers when no explicit trace is given —
        #: used both for construction (``speeds=None``) and for
        #: mid-simulation joiners (:meth:`add_node` with ``trace=None``),
        #: matching the ``ChurnEvent.join`` ``rate=0`` → "solver
        #: default" contract.  A service cluster running at 1e9 flops/s
        #: would otherwise hand a joiner the bare unit-test rate of 1.0
        #: — a billion times slow.
        self.default_rate = float(default_rate)
        self.sim = Simulator()
        if wave_batching is None:
            wave_batching = os.environ.get("REPRO_DES_WAVE", "1") != "0"
        #: batch homogeneous task waves into one event (see :class:`_Wave`);
        #: mutable so callers (e.g. the fault-injecting solver) can turn
        #: the fast path off and fall back to strict per-event semantics
        self.wave_batching = bool(wave_batching)
        #: resolves :class:`repro.costmodel.WorkItem` submissions to
        #: work floats; raw float submissions bypass it entirely, so a
        #: bare cluster behaves exactly as before the cost-model layer
        self.cost_model = cost_model if cost_model is not None else FLAT
        #: memory hierarchy stamped onto every node (``None`` = none)
        self.memory = memory
        self.agas = agas if agas is not None else AddressSpace()
        self.counters = CounterRegistry(self.agas)
        self.network = network if network is not None else Network()
        if speeds is None:
            speeds = [ConstantSpeed(self.default_rate)
                      for _ in range(num_nodes)]
        if len(speeds) != num_nodes:
            raise ValueError(f"need {num_nodes} speed traces, got {len(speeds)}")
        self.nodes: List[SimNode] = []
        self._net_counters = []
        for i in range(num_nodes):
            counter = self.counters.create_busy_time(f"node{i}")
            self.nodes.append(SimNode(i, cores_per_node, speeds[i], counter,
                                      memory=memory))
            # networking counters (the paper's future-work item): bytes
            # crossing each node's NIC, resettable like busy_time
            self._net_counters.append(
                (self.counters.create(f"node{i}", "bytes_sent"),
                 self.counters.create(f"node{i}", "bytes_received")))
        self._window_start = 0.0
        #: called with each :class:`SimTask` that targets a dead node
        #: (set by the distributed solver after a failure); the handler
        #: must route the task to a live node via :meth:`resubmit`
        self.orphan_handler: Optional[Callable[[SimTask], None]] = None

    # -- submission --------------------------------------------------------
    def submit(self, node_id: int, work: float,
               action: Optional[Callable[[], Any]] = None,
               deps: Sequence[Future] = (), label: str = "task",
               tag: Any = None) -> Future:
        """Queue a task on ``node_id`` once all ``deps`` are ready.

        Returns the task's future.  ``deps`` are typically message futures
        (ghost data) or other task futures; the task enters the node's
        ready queue at the virtual time the last dependency resolves,
        which is how communication/computation overlap arises naturally.

        ``node_id`` must be alive at submission time; a task whose deps
        resolve *after* the node failed is handed to
        :attr:`orphan_handler` instead of running on the dead node.

        ``work`` may be a plain float (work units, as always) or a
        :class:`repro.costmodel.WorkItem`, which the cluster's cost
        model resolves to work units here — before the task exists —
        so waves, group prefix sums, and the step-plan cache all
        operate on ordinary resolved floats.
        """
        if isinstance(work, WorkItem):
            work = self.cost_model.task_work(work)
        node = self._node(node_id)
        if not node.alive:
            raise SimulationError(f"cannot submit to failed node {node_id}")
        task = SimTask(node_id, work, action, label, tag=tag)
        if not deps:
            self._enqueue(node, task)
        else:
            local_when_all(list(deps))._add_callback(
                lambda _f: self._enqueue(node, task))
        return task.future

    def resubmit(self, task: SimTask, node_id: int,
                 deps: Sequence[Future] = ()) -> None:
        """Requeue an orphaned ``task`` on live ``node_id``.

        The task keeps its original future, so step barriers built from
        :func:`repro.amt.future.when_all` over the pre-failure futures
        still fire once the requeued work completes.  The caller (the
        solver's recovery path) adjusts ``task.work`` for the recovery
        penalty and passes the checkpoint re-fetch message as a dep.
        """
        node = self._node(node_id)
        if not node.alive:
            raise SimulationError(
                f"cannot requeue task on failed node {node_id}")
        if task.future.is_ready():
            raise SimulationError("cannot requeue a completed task")
        task.node_id = node_id
        if not deps:
            self._enqueue(node, task)
        else:
            local_when_all(list(deps))._add_callback(
                lambda _f: self._enqueue(node, task))

    def timer(self, delay: float, payload: Any = None) -> Future:
        """A future that resolves ``delay`` virtual seconds from now.

        Used to model serial per-task spawn overhead (a node's scheduler
        enqueues tasks one after another) and any other fixed delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        fut = LocalFuture()
        if delay == 0:
            fut._set_value(payload)
        else:
            self.sim.schedule_after(delay, lambda: fut._set_value(payload),
                                    priority=0, klass="timer")
        return fut

    def send(self, src: int, dst: int, nbytes: int, payload: Any = None) -> Future:
        """Send ``payload`` from node ``src`` to ``dst``; future resolves on delivery."""
        self._node(src)
        self._node(dst)
        if src != dst:
            self._net_counters[src][0].add(nbytes)
            self._net_counters[dst][1].add(nbytes)
        fut = LocalFuture()
        arrival = self.network.plan_send(src, dst, nbytes, self.sim.now)
        if arrival <= self.sim.now:
            fut._set_value(payload)
        else:
            # priority 0: deliveries fire before same-time task completions
            self.sim.schedule(arrival, lambda: fut._set_value(payload),
                              priority=0, klass="delivery")
        return fut

    def send_many(self, messages: Sequence[Tuple[int, int, int]]) -> List[Future]:
        """Issue ``(src, dst, nbytes)`` sends back-to-back; one future each.

        Semantically ``[self.send(src, dst, nbytes) for ...]`` — same
        network planning, same counters, same delivery events in the
        same order — with the per-message attribute lookups and
        validation hoisted out of the loop.  This is the replay hot
        path for compiled step plans: a 512-node ghost exchange issues
        tens of thousands of messages per step at one virtual instant.
        """
        sim = self.sim
        now = sim.now
        schedule = sim.schedule
        plan_send = self.network.plan_send
        net_counters = self._net_counters
        num_nodes = len(self.nodes)
        futures: List[Future] = []
        append = futures.append
        for src, dst, nbytes in messages:
            if src >= num_nodes or dst >= num_nodes or src < 0 or dst < 0:
                raise SimulationError(f"unknown node in send {src}->{dst}")
            if src != dst:
                tx, rx = net_counters[src][0], net_counters[dst][1]
                tx._window += nbytes
                tx._lifetime += nbytes
                rx._window += nbytes
                rx._lifetime += nbytes
            fut = LocalFuture()
            arrival = plan_send(src, dst, nbytes, now)
            if arrival <= now:
                fut._set_value(None)
            else:
                schedule(arrival, fut._resolve_none, priority=0,
                         klass="delivery")
            append(fut)
        return futures

    def submit_group(self, works: Sequence[float], label: str = "task",
                     callback=None,
                     nodes: Optional[Sequence[int]] = None
                     ) -> Optional[Future]:
        """Queue ``works[k]`` on node ``nodes[k]``; one barrier future.

        ``nodes`` defaults to ``0..len(works)-1`` (the historical
        dense-fleet form); an explicit sequence targets an arbitrary
        subset of node ids — the membership-aware form the service
        manager uses once autoscaling grows or drains the fleet, since
        dead nodes keep their ids.  Semantically identical to::

            local_when_all([self.submit(nid, w, label=label)
                            for nid, w in zip(nodes, works)])

        and falls back to exactly that when batching is off or any
        target node is not on the group fast path (dead, multi-core,
        non-constant speed, or currently holding classic/wave tasks).
        On the fast path each task becomes a *pending entry* tail-
        scheduled behind the node's previous entry — ``start =
        max(tail, now)``, ``finish = start + work/rate``, the identical
        float64 arithmetic the per-event dispatch performs — and the
        whole group completes through a single DES event at its latest
        finish, where the barrier future resolves.  This is the service
        hot path: one event per job *step* instead of one per task (see
        DESIGN.md, "Service fast path").

        With ``callback`` (a zero-arg callable) no barrier future is
        built at all: the callback runs exactly where the future would
        have resolved, and the method returns ``None``.  That skips one
        future plus its subscription per group — the service manager's
        per-sweep continuation path.

        ``works`` may be :class:`repro.costmodel.WorkItem` s (all or
        none — no mixing), resolved through the cluster's cost model up
        front so the tail-scheduling arithmetic below sees floats.
        """
        if works and isinstance(works[0], WorkItem):
            works = [self.cost_model.task_work(w) for w in works]
        if nodes is None:
            ids: Sequence[int] = range(len(works))
        else:
            if len(nodes) != len(works):
                raise SimulationError(
                    f"group of {len(works)} tasks got {len(nodes)} "
                    f"target nodes")
            ids = nodes
        if not self.wave_batching:
            fut = local_when_all(
                [self.submit(nid, w, label=label)
                 for nid, w in zip(ids, works)])
            if callback is None:
                return fut
            fut._add_callback(lambda _f: callback())
            return None
        all_nodes = self.nodes
        num_nodes = len(all_nodes)
        if len(works) > num_nodes:
            raise SimulationError(
                f"group of {len(works)} tasks needs {len(works)} nodes, "
                f"have {num_nodes}")
        for nid, work in zip(ids, works):
            if not 0 <= nid < num_nodes:
                raise SimulationError(f"unknown node id {nid}")
            node = all_nodes[nid]
            # a node that already holds pending group entries is still
            # eligible: everything that could break eligibility
            # (classic submits, failures, run cuts, counter resets)
            # materializes the entries away first, so a non-empty
            # ``pending`` proves the full check passed and nothing
            # changed since
            if work < 0.0 or (not node.pending and (
                    node.group_rate == 0.0 or not node.alive
                    or node.running or node.ready
                    or node.wave is not None)):
                fut = local_when_all(
                    [self.submit(nid, w, label=label)
                     for nid, w in zip(ids, works)])
                if callback is None:
                    return fut
                fut._add_callback(lambda _f: callback())
                return None
        sim = self.sim
        now = sim.now
        if callback is None:
            fut = LocalFuture()
            group = _TaskGroup(fut._resolve_none, len(works))
        else:
            fut = None
            group = _TaskGroup(callback, len(works))
        t_max = now
        for nid, work in zip(ids, works):
            node = all_nodes[nid]
            tail = node.tail
            start = tail if tail > now else now
            finish = start + work / node.group_rate
            node.pending.append((start, finish, work, group))
            node.tail = finish
            if finish > t_max:
                t_max = finish
        group.event = sim.schedule(
            t_max, lambda g=group: self._complete_group(g),
            priority=1, klass="wave")
        return fut

    def send_group(self, messages: Sequence[Tuple[int, int, int]],
                   callback=None) -> Optional[Future]:
        """Issue sends back-to-back; one barrier future for the batch.

        Semantically ``local_when_all(self.send_many(messages))`` — the
        network planning, egress serialization and byte counters are
        identical and happen eagerly in message order — but on the fast
        path only *one* delivery event is scheduled, at the latest
        arrival time, which is exactly when the barrier over the
        individual deliveries would fire.  Falls back to the per-message
        form when wave batching is off.

        With ``callback`` (zero-arg) the barrier future is skipped: the
        callback runs where it would have resolved — synchronously when
        every arrival is instantaneous, else in the one delivery event —
        and the method returns ``None``.
        """
        if not self.wave_batching:
            fut = local_when_all(self.send_many(messages))
            if callback is None:
                return fut
            fut._add_callback(lambda _f: callback())
            return None
        sim = self.sim
        now = sim.now
        plan_send = self.network.plan_send
        net_counters = self._net_counters
        num_nodes = len(self.nodes)
        t_max = now
        for src, dst, nbytes in messages:
            if src >= num_nodes or dst >= num_nodes or src < 0 or dst < 0:
                raise SimulationError(f"unknown node in send {src}->{dst}")
            if src != dst:
                tx, rx = net_counters[src][0], net_counters[dst][1]
                tx._window += nbytes
                tx._lifetime += nbytes
                rx._window += nbytes
                rx._lifetime += nbytes
            arrival = plan_send(src, dst, nbytes, now)
            if arrival > t_max:
                t_max = arrival
        if callback is not None:
            if t_max <= now:
                callback()
            else:
                sim.schedule(t_max, callback, priority=0,
                             klass="delivery")
            return None
        fut = LocalFuture()
        if t_max <= now:
            fut._set_value(None)
        else:
            sim.schedule(t_max, fut._resolve_none, priority=0,
                         klass="delivery")
        return fut

    # -- membership (elastic cluster, DESIGN.md substitution 4) ------------
    def add_node(self, cores: int = 1,
                 trace: Optional[SpeedTrace] = None) -> int:
        """Provision a new node mid-simulation; returns its id.

        The node starts alive, idle, and with fresh counters whose
        measurement window begins now — its busy fraction is comparable
        to the incumbents' from the next counter reset on.  Without an
        explicit ``trace`` the joiner runs at the cluster's
        ``default_rate`` (the same default construction uses), so a
        joiner is never slower than the fleet by accident.
        """
        i = len(self.nodes)
        counter = self.counters.create_busy_time(f"node{i}")
        if trace is None:
            trace = ConstantSpeed(self.default_rate)
        self.nodes.append(SimNode(i, cores, trace, counter,
                                  memory=self.memory))
        self._net_counters.append(
            (self.counters.create(f"node{i}", "bytes_sent"),
             self.counters.create(f"node{i}", "bytes_received")))
        return i

    def fail_node(self, node_id: int) -> List[SimTask]:
        """Kill ``node_id`` now; returns its orphaned tasks.

        In-flight tasks have their scheduled completions cancelled and
        their busy intervals truncated at the failure instant (partial
        work is *lost* — a requeued task restarts from scratch); queued
        tasks are drained.  Orphans are returned in a deterministic
        order (running tasks in dispatch order, then the ready queue)
        for the caller to requeue via :meth:`resubmit`.  Tasks whose
        dependencies resolve after the failure are routed to
        :attr:`orphan_handler`.
        """
        node = self._node(node_id)
        if not node.alive:
            raise SimulationError(f"node {node_id} already failed")
        if len(self.active_node_ids()) <= 1:
            raise SimulationError(
                f"cannot fail node {node_id}: it is the last alive node")
        node.alive = False
        # group entries (any node's) revert to per-task form first, so
        # the dead node's in-flight work is truncated and orphaned with
        # exact per-event semantics
        self._materialize_groups()
        orphans: List[SimTask] = []
        if node.wave is not None:
            orphans.extend(self._flush_wave(node))
        for task, (token, event) in node.running.items():
            event.cancel()
            node.counter.end_work(self.sim.now, token)
            orphans.append(task)
        if node.running:
            node.busy_marks += 1
        node.running.clear()
        orphans.extend(node.ready)
        node.ready.clear()
        node.free_cores = 0
        # the dead node's NIC is gone: drop its egress reservation so a
        # same-id bookkeeping reuse can never inherit a ghost backlog
        self.network.release_node(node_id)
        return orphans

    def active_node_ids(self) -> List[int]:
        """Ids of the currently alive nodes, ascending."""
        return [n.node_id for n in self.nodes if n.alive]

    def alive_mask(self) -> List[bool]:
        """Per-node liveness flags (index = node id)."""
        return [n.alive for n in self.nodes]

    # -- execution -----------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Drain the event queue; return final virtual time."""
        result = self.sim.run(until=until, max_events=max_events)
        if until is not None:
            self._materialize_waves()
            self._materialize_groups()
        return result

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    # -- accounting -----------------------------------------------------------
    def busy_time(self, node_id: int) -> float:
        """Window busy core-seconds of ``node_id``."""
        node = self._node(node_id)
        if node.pending:
            self._flush_pending(node, self.sim.now)
        return node.busy_time()

    def poll_busy(self, cursor: BusyCursor) -> List[float]:
        """Per-node window busy times, incrementally (all node ids).

        Semantically ``[self.busy_time(n) for n in range(len(
        self.nodes))]`` — and bit-identical to it: a node is re-read
        only when its :attr:`SimNode.busy_marks` moved past the
        cursor's last-seen mark (or it holds un-flushed group entries);
        otherwise nothing has touched its busy counter since the last
        poll, so the cached float *is* what ``busy_time`` would return.
        Nodes that stayed idle the whole window — the common case at
        fleet scale — cost one integer compare instead of a counter
        read per poll.
        """
        nodes = self.nodes
        marks, values = cursor.marks, cursor.values
        cursor._ensure(len(nodes))
        for i, node in enumerate(nodes):
            if node.pending or node.busy_marks != marks[i]:
                values[i] = self.busy_time(i)
                # read back after busy_time: flushing pending entries
                # bumps the mark
                marks[i] = node.busy_marks
        return values[:len(nodes)]

    def rebase_busy_cursor(self, cursor: BusyCursor) -> None:
        """Realign ``cursor`` to the just-reset counters.

        Call immediately after :meth:`reset_counters`: every window is
        exactly ``0.0`` there, so the cursor caches zeros against the
        current marks and the next poll re-reads only nodes that do
        work in the new window.
        """
        nodes = self.nodes
        cursor._ensure(len(nodes))
        for i, node in enumerate(nodes):
            cursor.marks[i] = node.busy_marks
            cursor.values[i] = 0.0

    def busy_fraction(self, node_id: int) -> float:
        """Busy core-seconds / available core-seconds in the window."""
        node = self._node(node_id)
        if node.pending:
            self._flush_pending(node, self.sim.now)
        span = (self.sim.now - self._window_start) * node.cores
        if span <= 0:
            return 0.0
        return node.busy_time() / span

    def idle_time(self, node_id: int) -> float:
        """Available minus busy core-seconds in the current window."""
        node = self._node(node_id)
        if node.pending:
            self._flush_pending(node, self.sim.now)
        span = (self.sim.now - self._window_start) * node.cores
        return max(0.0, span - node.busy_time())

    def bytes_sent(self, node_id: int) -> float:
        """Window bytes sent by ``node_id`` (networking counter)."""
        self._node(node_id)
        return self._net_counters[node_id][0].value()

    def bytes_received(self, node_id: int) -> float:
        """Window bytes received by ``node_id`` (networking counter)."""
        self._node(node_id)
        return self._net_counters[node_id][1].value()

    def reset_counters(self) -> None:
        """Reset all counters (busy + networking); restart the window clock.

        Passes the current virtual time so busy intervals that are open
        at the reset (in-flight tasks at a balance poll) are clipped at
        the window boundary instead of leaking their pre-reset span into
        the new window.  Group entries revert to per-task form first so
        an entry straddling the reset is clipped exactly like an
        in-flight per-event task.
        """
        self._materialize_groups()
        self.counters.reset_all(now=self.sim.now)
        self._window_start = self.sim.now
        # windows changed under every cursor: any poll that skips the
        # rebase fast path must re-read (rebase_busy_cursor avoids the
        # O(nodes) re-read for callers that pair it with the reset)
        for node in self.nodes:
            node.busy_marks += 1

    # -- internals ---------------------------------------------------------
    def _node(self, node_id: int) -> SimNode:
        if not 0 <= node_id < len(self.nodes):
            raise SimulationError(f"unknown node id {node_id}")
        return self.nodes[node_id]

    def _enqueue(self, node: SimNode, task: SimTask) -> None:
        if not node.alive:
            # deps resolved after the node died: reroute, don't run
            if self.orphan_handler is None:
                raise SimulationError(
                    f"task {task.label!r} became ready on failed node "
                    f"{node.node_id} and no orphan handler is set")
            self.orphan_handler(task)
            return
        if node.pending:
            # classic task arriving on a node with tail-scheduled group
            # entries: revert groups to per-task state first so FIFO
            # order and core occupancy are exact under mixing
            self._materialize_groups()
        node.ready.append(task)
        self._dispatch(node)

    def _dispatch(self, node: SimNode) -> None:
        if (self.wave_batching and node.alive and node.cores == 1
                and node.free_cores == 1 and len(node.ready) >= 2
                and type(node.trace) is ConstantSpeed):
            # wave fast path: batch the leading run of action-free
            # tasks, cut so no *observed* future resolves late.  A wave
            # resolves its members at the wave's end, so an observed
            # member is only safe when every observer also waits for
            # the wave's final member: a run may end at a member of the
            # single common local_when_all barrier (the barrier cannot
            # fire before the run's own end), at an unobserved member,
            # or at a multi-observed member (its own true completion
            # time is the wave end).  Futures observed *after* the wave
            # forms trigger a live unwind (see LocalFuture._wave).
            k = 0
            end = 0
            common = None
            for task in node.ready:
                if task.action is not None or task.work < 0.0:
                    break
                g = task.future._group
                k += 1
                if g is None:
                    if common is None:
                        end = k
                elif common is not None and g is not common:
                    break
                elif g is _MULTI:
                    end = k
                    break
                else:
                    common = g
                    end = k
            if end >= 2:
                self._start_wave(node, end)
        while node.alive and node.free_cores > 0 and node.ready:
            task = node.ready.popleft()
            node.free_cores -= 1
            start = self.sim.now
            duration = node.trace.time_to_complete(task.work, start)
            token = node.counter.begin_work(start)
            # priority 1: completions fire after same-time message deliveries
            event = self.sim.schedule(
                start + duration,
                lambda t=task, n=node: self._complete(n, t),
                priority=1, klass="completion")
            node.running[task] = (token, event)

    def _start_wave(self, node: SimNode, k: int) -> None:
        ready = node.ready
        tasks = [ready.popleft() for _ in range(k)]
        start = self.sim.now
        rate = node.trace._rate
        if k < 32:
            # numpy setup costs more than it saves on short waves; the
            # loop performs the identical fl(t + work/rate) additions
            times: List[float] = []
            t = start
            for task in tasks:
                t = t + task.work / rate
                times.append(t)
        else:
            acc = np.empty(k + 1, dtype=np.float64)
            acc[0] = start
            works = np.fromiter((task.work for task in tasks),
                                dtype=np.float64, count=k)
            np.divide(works, rate, out=acc[1:])
            # ufunc accumulate adds strictly left to right: bit-identical
            # to the sequential t_i = fl(t_{i-1} + fl(work_i/rate)) chain
            times = np.add.accumulate(acc)[1:].tolist()
        node.free_cores -= 1
        event = self.sim.schedule(
            times[-1], lambda n=node: self._complete_wave(n),
            priority=1, klass="wave")
        wave = _Wave(tasks, times, start, event)
        node.wave = wave
        # a subscriber attaching to a non-final member mid-flight must
        # see the true completion time: arm the live unwind trigger
        # (fired from LocalFuture._add_callback)
        trigger = (lambda n=node, w=wave:
                   self._materialize_live_wave(n, w))
        for task in tasks[:-1]:
            task.future._wave = trigger

    def _complete_wave(self, node: SimNode) -> None:
        wave = node.wave
        node.wave = None
        for task in wave.tasks:
            task.future._wave = None
        counter = node.counter
        prev = wave.start
        # same telescoping busy deltas the per-event path accumulates
        for t in wave.times:
            counter.add(t - prev)
            prev = t
        node.busy_marks += 1
        node.tasks_completed += len(wave.tasks)
        for task in wave.tasks:
            node.work_completed += task.work
        node.free_cores += 1
        for task in wave.tasks:
            task.future._set_value(None)
        self._dispatch(node)

    def _flush_wave(self, node: SimNode) -> List[SimTask]:
        """Unwind an in-flight wave at a failure instant.

        Tasks whose completion time already passed are retroactively
        completed (their per-event completions would have fired before
        the failure event: completions carry priority 1, faults -1).
        The in-flight task's busy interval is truncated at ``now``; it
        and the not-yet-started tail become orphans, in queue order —
        exactly the per-event failure semantics.
        """
        wave = node.wave
        node.wave = None
        wave.event.cancel()
        for task in wave.tasks:
            task.future._wave = None
        now = self.sim.now
        counter = node.counter
        prev = wave.start
        orphans: List[SimTask] = []
        in_flight = True
        for task, t in zip(wave.tasks, wave.times):
            if not orphans and t < now:
                counter.add(t - prev)
                prev = t
                node.tasks_completed += 1
                node.work_completed += task.work
                task.future._set_value(None)
            else:
                if in_flight:
                    # the task occupying the core: truncate like end_work
                    counter.add(now - prev)
                    in_flight = False
                orphans.append(task)
        node.busy_marks += 1
        return orphans

    def _materialize_waves(self) -> None:
        """Convert interrupted waves back into per-task state.

        Called after ``run(until=...)`` returns mid-wave: completes the
        tasks whose times are ``<= now`` (their events would have fired),
        reconstructs the in-flight task as a normal ``running`` entry
        with its own completion event, and puts the untouched tail back
        at the front of the ready queue.  The cluster state then matches
        the per-event path at the same boundary.
        """
        now = self.sim.now
        for node in self.nodes:
            wave = node.wave
            if wave is None:
                continue
            node.wave = None
            wave.event.cancel()
            for task in wave.tasks:
                task.future._wave = None
            counter = node.counter
            prev = wave.start
            idx = 0
            for task, t in zip(wave.tasks, wave.times):
                if t <= now:
                    counter.add(t - prev)
                    prev = t
                    node.tasks_completed += 1
                    node.work_completed += task.work
                    task.future._set_value(None)
                    idx += 1
                else:
                    break
            if idx:
                node.busy_marks += 1
            if idx < len(wave.tasks):
                task = wave.tasks[idx]
                token = counter.begin_work(prev)
                event = self.sim.schedule(
                    wave.times[idx],
                    lambda t=task, n=node: self._complete(n, t),
                    priority=1, klass="completion")
                node.running[task] = (token, event)
                for rest in reversed(wave.tasks[idx + 1:]):
                    node.ready.appendleft(rest)
            else:  # pragma: no cover - wave event fires at times[-1]
                node.free_cores += 1
                self._dispatch(node)

    def _materialize_live_wave(self, node: SimNode, wave: _Wave) -> None:
        """Unwind one in-flight wave the instant a member is observed.

        Triggered from :meth:`LocalFuture._add_callback` when a new
        subscriber (a ``local_when_all`` barrier, a ``then``) attaches to
        a non-final wave member: the subscriber must see the member's
        true completion time, so the wave reverts to per-task form.
        Members whose completion times are strictly past are completed
        retroactively (their per-event completions would have fired
        before the current event); the in-flight member becomes a normal
        ``running`` entry with its own completion event — scheduled at
        its exact per-event time, including a completion *later this
        same instant* when ``t == now`` — and the tail returns to the
        ready queue.
        """
        if node.wave is not wave:  # stale trigger from a resolved wave
            return
        node.wave = None
        wave.event.cancel()
        for task in wave.tasks:
            task.future._wave = None
        now = self.sim.now
        counter = node.counter
        prev = wave.start
        idx = 0
        for task, t in zip(wave.tasks, wave.times):
            if t < now:
                counter.add(t - prev)
                prev = t
                node.tasks_completed += 1
                node.work_completed += task.work
                task.future._set_value(None)
                idx += 1
            else:
                break
        if idx:
            node.busy_marks += 1
        # the wave event at times[-1] has not fired (it would have
        # cleared node.wave), so at least the final member has t >= now
        task = wave.tasks[idx]
        token = counter.begin_work(prev)
        event = self.sim.schedule(
            wave.times[idx],
            lambda t=task, n=node: self._complete(n, t),
            priority=1, klass="completion")
        node.running[task] = (token, event)
        for rest in reversed(wave.tasks[idx + 1:]):
            node.ready.appendleft(rest)

    # -- task groups (service fast path) -----------------------------------
    def _flush_pending(self, node: SimNode, now: float) -> None:
        """Retire the completed prefix of ``node``'s group entries.

        Pops entries with ``finish <= now`` — per-event, their
        completions would already have fired — crediting busy time and
        task/work totals exactly as :meth:`_complete` does, and
        decrementing each entry's group counter.  Never resolves a
        barrier: resolution happens in the group's own event
        (:meth:`_complete_group`), preserving per-event firing order.
        In-flight entries (``finish > now``) contribute nothing, exactly
        like an open ``BusyTimeCounter`` interval.
        """
        pending = node.pending
        counter = node.counter
        retired = False
        while pending and pending[0][1] <= now:
            start, finish, work, group = pending.popleft()
            span = finish - start
            counter._window += span
            counter._lifetime += span
            node.tasks_completed += 1
            node.work_completed += work
            group.remaining -= 1
            retired = True
        if retired:
            node.busy_marks += 1

    def _complete_group(self, group: _TaskGroup) -> None:
        """The one DES event per task group: flush, then fire the barrier.

        Fires at the group's latest entry finish.  Per-node finishes are
        monotone, so flushing every node's completed prefix retires all
        of this group's entries (earlier groups' stragglers included —
        their barriers still fire in their own events, where the flush
        simply finds nothing left).
        """
        now = self.sim.now
        for node in self.nodes:
            pending = node.pending
            if pending and pending[0][1] <= now:
                self._flush_pending(node, now)
        group.fire()

    def _materialize_groups(self) -> None:
        """Convert tail-scheduled group entries back into per-task state.

        Called at a ``run(until=...)`` boundary, on failure, on counter
        reset, and when classic tasks mix onto a node with pending
        entries.  The completed prefix flushes as usual; every remaining
        entry becomes a real :class:`SimTask` — the head entry (whose
        ``start <= now`` always, by tail-scheduling) as an in-flight
        ``running`` entry with an open busy interval and its own
        completion event, the tail as ready-queue tasks.  Each converted
        task decrements its group's counter on completion, so the
        barrier still fires exactly when the group's last task finishes.
        Group events of converted groups are cancelled (their remaining
        entries no longer exist as entries).
        """
        now = self.sim.now
        for node in self.nodes:
            pending = node.pending
            if not pending:
                continue
            self._flush_pending(node, now)
            first = True
            while pending:
                start, finish, work, group = pending.popleft()
                if group.event is not None:
                    group.event.cancel()
                    group.event = None
                task = SimTask(node.node_id, work, None, "task")
                task.future._add_callback(
                    lambda _f, g=group: self._group_task_done(g))
                if first:
                    first = False
                    token = node.counter.begin_work(start)
                    event = self.sim.schedule(
                        finish,
                        lambda t=task, n=node: self._complete(n, t),
                        priority=1, klass="completion")
                    node.running[task] = (token, event)
                    node.free_cores -= 1
                else:
                    node.ready.append(task)

    def _group_task_done(self, group: _TaskGroup) -> None:
        group.remaining -= 1
        if group.remaining == 0:
            group.fire()

    def _complete(self, node: SimNode, task: SimTask) -> None:
        token, _event = node.running.pop(task)
        node.counter.end_work(self.sim.now, token)
        node.busy_marks += 1
        node.free_cores += 1
        node.tasks_completed += 1
        node.work_completed += task.work
        try:
            result = task.action() if task.action is not None else None
        except BaseException as exc:  # noqa: BLE001 - forwarded to future
            task.future._set_exception(exc)
        else:
            task.future._set_value(result)
        self._dispatch(node)
