"""Simulated distributed cluster with real computation and virtual time.

This is the substitution for the paper's HPX/MPI Skylake cluster (see
DESIGN.md).  The key idea: tasks submitted to a :class:`SimCluster` carry
both

* a **work amount** (abstract work units, e.g. DP-updates × stencil size)
  that determines how long the task occupies a simulated core, and
* an optional **action** (a real Python callable, typically a NumPy
  kernel) that executes when the task completes, so the distributed solver
  produces genuinely correct temperatures while the clock is virtual.

Nodes have a bounded core count and a per-core speed *trace* (work units
per virtual second, possibly time-varying — that is how heterogeneous and
time-varying compute capacity from the paper's Sec. 4 challenge 4 enters).
Messages pay ``latency + bytes/bandwidth`` and serialize on the sender's
egress link.  Busy time is accumulated into
:class:`repro.amt.counters.BusyTimeCounter` instances registered in AGAS,
which is exactly what the load balancer polls.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from .agas import AddressSpace
from .counters import BusyTimeCounter, CounterRegistry
from .des import SimulationError, Simulator
from .future import Future, when_all

__all__ = ["SpeedTrace", "ConstantSpeed", "PiecewiseSpeed", "RampSpeed",
           "Network", "SimNode", "SimTask", "SimCluster"]


# ---------------------------------------------------------------------------
# speed traces
# ---------------------------------------------------------------------------

class SpeedTrace:
    """Per-core compute rate as a function of virtual time.

    Subclasses implement :meth:`rate` and :meth:`time_to_complete`.  The
    latter answers "starting at ``t0``, how long until ``work`` units are
    done?", i.e. it inverts the integral of the rate.  Keeping this on the
    trace lets piecewise traces integrate exactly instead of sampling the
    rate at task start.
    """

    def rate(self, t: float) -> float:
        """Instantaneous work units per second at virtual time ``t``."""
        raise NotImplementedError

    def time_to_complete(self, work: float, t0: float) -> float:
        """Seconds to finish ``work`` units when starting at ``t0``."""
        raise NotImplementedError


class ConstantSpeed(SpeedTrace):
    """A fixed rate; the common case for homogeneous scaling studies."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = float(rate)

    def rate(self, t: float) -> float:
        return self._rate

    def time_to_complete(self, work: float, t0: float) -> float:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        return work / self._rate


class PiecewiseSpeed(SpeedTrace):
    """Piecewise-constant rate over ``[t_i, t_{i+1})`` intervals.

    Used to emulate nodes whose capacity changes over time (external jobs
    being scheduled alongside ours — the paper's motivating scenario for
    dynamic balancing).  Completion times integrate the rate exactly
    across breakpoints.

    Parameters
    ----------
    breakpoints:
        Strictly increasing times ``t_1 < t_2 < ...``; the rate before
        ``t_1`` is ``rates[0]``, between ``t_i`` and ``t_{i+1}`` it is
        ``rates[i]``, and after the last breakpoint ``rates[-1]``.
    rates:
        ``len(breakpoints) + 1`` positive rates.
    """

    def __init__(self, breakpoints: Sequence[float], rates: Sequence[float]) -> None:
        if len(rates) != len(breakpoints) + 1:
            raise ValueError("need len(rates) == len(breakpoints) + 1")
        if any(r <= 0 for r in rates):
            raise ValueError("all rates must be positive")
        if any(b2 <= b1 for b1, b2 in zip(breakpoints, breakpoints[1:])):
            raise ValueError("breakpoints must be strictly increasing")
        self._bp = [float(b) for b in breakpoints]
        self._rates = [float(r) for r in rates]

    def rate(self, t: float) -> float:
        for i, b in enumerate(self._bp):
            if t < b:
                return self._rates[i]
        return self._rates[-1]

    def time_to_complete(self, work: float, t0: float) -> float:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        remaining = float(work)
        t = float(t0)
        # walk segments, consuming work at each segment's rate
        for i, b in enumerate(self._bp):
            if t >= b:
                continue
            seg_rate = self._rates[i]
            seg_capacity = (b - t) * seg_rate
            if remaining <= seg_capacity:
                return (t + remaining / seg_rate) - t0
            remaining -= seg_capacity
            t = b
        return (t + remaining / self._rates[-1]) - t0


class RampSpeed(SpeedTrace):
    """Linear capacity drift: ``rate0`` before ``t0``, ramping linearly
    to ``rate1`` over ``[t0, t1]``, ``rate1`` after.

    Models *gradually* shifting node capacity (a co-located job slowly
    scaling up, thermal drift) as opposed to :class:`PiecewiseSpeed`'s
    step changes — the workload where one-shot balancing decisions age
    badly and adaptive re-balancing pays off.  Completion times
    integrate the ramp exactly (closed form per segment), so schedules
    remain deterministic and machine-independent.
    """

    def __init__(self, rate0: float, rate1: float, t0: float, t1: float) -> None:
        if rate0 <= 0 or rate1 <= 0:
            raise ValueError("rates must be positive")
        if not 0 <= t0 < t1:
            raise ValueError(f"need 0 <= t0 < t1, got [{t0}, {t1}]")
        self.rate0 = float(rate0)
        self.rate1 = float(rate1)
        self.t0 = float(t0)
        self.t1 = float(t1)
        self._slope = (self.rate1 - self.rate0) / (self.t1 - self.t0)

    def rate(self, t: float) -> float:
        if t <= self.t0:
            return self.rate0
        if t >= self.t1:
            return self.rate1
        return self.rate0 + self._slope * (t - self.t0)

    def time_to_complete(self, work: float, t0: float) -> float:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        remaining = float(work)
        t = float(t0)
        # flat head segment
        if t < self.t0:
            head = (self.t0 - t) * self.rate0
            if remaining <= head:
                return (t + remaining / self.rate0) - t0
            remaining -= head
            t = self.t0
        # ramp segment: integral of r(a) + slope*x over x in [0, dt]
        if t < self.t1 and self._slope != 0.0:
            r_here = self.rate(t)
            ramp_capacity = 0.5 * (r_here + self.rate1) * (self.t1 - t)
            if remaining <= ramp_capacity:
                # solve slope/2 * x^2 + r_here * x = remaining for x > 0
                disc = r_here * r_here + 2.0 * self._slope * remaining
                x = (math.sqrt(disc) - r_here) / self._slope
                return (t + x) - t0
            remaining -= ramp_capacity
            t = self.t1
        elif t < self.t1:  # degenerate flat "ramp" (rate0 == rate1)
            cap = (self.t1 - t) * self.rate0
            if remaining <= cap:
                return (t + remaining / self.rate0) - t0
            remaining -= cap
            t = self.t1
        return (t + remaining / self.rate1) - t0


# ---------------------------------------------------------------------------
# network
# ---------------------------------------------------------------------------

class Network:
    """Latency + bandwidth message-cost model with per-node egress links.

    ``transfer_time(nbytes) = latency + nbytes / bandwidth``; concurrent
    sends from the same node additionally serialize on that node's egress
    link (a NIC can only push one message at a time), which reproduces the
    "boundary SDs grow with node count ⇒ slight roll-off" effect visible
    in the paper's Fig. 13.

    Intra-node messages are free and instantaneous: the paper's SDs on the
    same node share memory.
    """

    def __init__(self, latency: float = 5e-6, bandwidth: float = 1.25e9,
                 serialize_egress: bool = True) -> None:
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.serialize_egress = serialize_egress
        self._egress_free: Dict[int, float] = {}
        self.bytes_sent = 0
        self.messages_sent = 0

    def wire_time(self, nbytes: int) -> float:
        """Pure serialization time of ``nbytes`` on the wire."""
        return nbytes / self.bandwidth

    def plan_send(self, src: int, dst: int, nbytes: int, now: float) -> float:
        """Account a message and return its virtual delivery time."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if src == dst:
            return now
        self.bytes_sent += nbytes
        self.messages_sent += 1
        start = now
        if self.serialize_egress:
            start = max(now, self._egress_free.get(src, 0.0))
            self._egress_free[src] = start + self.wire_time(nbytes)
        return start + self.latency + self.wire_time(nbytes)

    def reset_stats(self) -> None:
        """Zero the byte/message counters (egress state is kept)."""
        self.bytes_sent = 0
        self.messages_sent = 0


# ---------------------------------------------------------------------------
# nodes and tasks
# ---------------------------------------------------------------------------

class SimTask:
    """A unit of simulated work bound to a node.

    The task's :attr:`future` resolves — at the task's virtual completion
    time — with the return value of ``action()`` (or ``None``).
    """

    __slots__ = ("node_id", "work", "action", "future", "label")

    def __init__(self, node_id: int, work: float,
                 action: Optional[Callable[[], Any]], label: str) -> None:
        self.node_id = node_id
        self.work = float(work)
        self.action = action
        self.future: Future = Future()
        self.label = label


class SimNode:
    """A simulated compute node: bounded cores + a speed trace.

    Scheduling is FIFO per node: ready tasks wait in a queue and occupy a
    core for ``trace.time_to_complete(work, start)`` virtual seconds.  The
    node's :class:`BusyTimeCounter` accumulates core-seconds of execution.
    """

    def __init__(self, node_id: int, cores: int, trace: SpeedTrace,
                 counter: BusyTimeCounter) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.node_id = node_id
        self.cores = cores
        self.trace = trace
        self.counter = counter
        self.free_cores = cores
        self.ready: Deque[SimTask] = deque()
        self.tasks_completed = 0
        self.work_completed = 0.0

    def busy_time(self) -> float:
        """Window busy core-seconds (since last counter reset)."""
        return self.counter.value()


class SimCluster:
    """The distributed-machine model: nodes + network + virtual clock.

    Typical usage by the distributed solver::

        cluster = SimCluster(num_nodes=4, cores_per_node=1)
        fut = cluster.submit(node_id=2, work=1e6, action=kernel)
        msg = cluster.send(src=0, dst=1, nbytes=8*512, payload=ghost_array)
        cluster.run()            # drain virtual time
        ghost = msg.get()        # delivered payload

    Determinism: with identical submission order, the virtual schedule is
    bit-identical across runs (no wall-clock coupling anywhere).
    """

    def __init__(self, num_nodes: int, cores_per_node: int = 1,
                 speeds: Optional[Sequence[SpeedTrace]] = None,
                 network: Optional[Network] = None,
                 agas: Optional[AddressSpace] = None) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.sim = Simulator()
        self.agas = agas if agas is not None else AddressSpace()
        self.counters = CounterRegistry(self.agas)
        self.network = network if network is not None else Network()
        if speeds is None:
            speeds = [ConstantSpeed(1.0) for _ in range(num_nodes)]
        if len(speeds) != num_nodes:
            raise ValueError(f"need {num_nodes} speed traces, got {len(speeds)}")
        self.nodes: List[SimNode] = []
        self._net_counters = []
        for i in range(num_nodes):
            counter = self.counters.create_busy_time(f"node{i}")
            self.nodes.append(SimNode(i, cores_per_node, speeds[i], counter))
            # networking counters (the paper's future-work item): bytes
            # crossing each node's NIC, resettable like busy_time
            self._net_counters.append(
                (self.counters.create(f"node{i}", "bytes_sent"),
                 self.counters.create(f"node{i}", "bytes_received")))
        self._window_start = 0.0

    # -- submission --------------------------------------------------------
    def submit(self, node_id: int, work: float,
               action: Optional[Callable[[], Any]] = None,
               deps: Sequence[Future] = (), label: str = "task") -> Future:
        """Queue a task on ``node_id`` once all ``deps`` are ready.

        Returns the task's future.  ``deps`` are typically message futures
        (ghost data) or other task futures; the task enters the node's
        ready queue at the virtual time the last dependency resolves,
        which is how communication/computation overlap arises naturally.
        """
        node = self._node(node_id)
        task = SimTask(node_id, work, action, label)
        if not deps:
            self._enqueue(node, task)
        else:
            when_all(list(deps))._add_callback(lambda _f: self._enqueue(node, task))
        return task.future

    def timer(self, delay: float, payload: Any = None) -> Future:
        """A future that resolves ``delay`` virtual seconds from now.

        Used to model serial per-task spawn overhead (a node's scheduler
        enqueues tasks one after another) and any other fixed delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        fut = Future()
        if delay == 0:
            fut._set_value(payload)
        else:
            self.sim.schedule_after(delay, lambda: fut._set_value(payload),
                                    priority=0)
        return fut

    def send(self, src: int, dst: int, nbytes: int, payload: Any = None) -> Future:
        """Send ``payload`` from node ``src`` to ``dst``; future resolves on delivery."""
        self._node(src)
        self._node(dst)
        if src != dst:
            self._net_counters[src][0].add(nbytes)
            self._net_counters[dst][1].add(nbytes)
        fut = Future()
        arrival = self.network.plan_send(src, dst, nbytes, self.sim.now)
        if arrival <= self.sim.now:
            fut._set_value(payload)
        else:
            # priority 0: deliveries fire before same-time task completions
            self.sim.schedule(arrival, lambda: fut._set_value(payload), priority=0)
        return fut

    # -- execution -----------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Drain the event queue; return final virtual time."""
        return self.sim.run(until=until, max_events=max_events)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    # -- accounting -----------------------------------------------------------
    def busy_time(self, node_id: int) -> float:
        """Window busy core-seconds of ``node_id``."""
        return self._node(node_id).busy_time()

    def busy_fraction(self, node_id: int) -> float:
        """Busy core-seconds / available core-seconds in the window."""
        node = self._node(node_id)
        span = (self.sim.now - self._window_start) * node.cores
        if span <= 0:
            return 0.0
        return node.busy_time() / span

    def idle_time(self, node_id: int) -> float:
        """Available minus busy core-seconds in the current window."""
        node = self._node(node_id)
        span = (self.sim.now - self._window_start) * node.cores
        return max(0.0, span - node.busy_time())

    def bytes_sent(self, node_id: int) -> float:
        """Window bytes sent by ``node_id`` (networking counter)."""
        self._node(node_id)
        return self._net_counters[node_id][0].value()

    def bytes_received(self, node_id: int) -> float:
        """Window bytes received by ``node_id`` (networking counter)."""
        self._node(node_id)
        return self._net_counters[node_id][1].value()

    def reset_counters(self) -> None:
        """Reset all counters (busy + networking); restart the window clock."""
        self.counters.reset_all()
        self._window_start = self.sim.now

    # -- internals ---------------------------------------------------------
    def _node(self, node_id: int) -> SimNode:
        if not 0 <= node_id < len(self.nodes):
            raise SimulationError(f"unknown node id {node_id}")
        return self.nodes[node_id]

    def _enqueue(self, node: SimNode, task: SimTask) -> None:
        node.ready.append(task)
        self._dispatch(node)

    def _dispatch(self, node: SimNode) -> None:
        while node.free_cores > 0 and node.ready:
            task = node.ready.popleft()
            node.free_cores -= 1
            start = self.sim.now
            duration = node.trace.time_to_complete(task.work, start)
            token = node.counter.begin_work(start)
            # priority 1: completions fire after same-time message deliveries
            self.sim.schedule(start + duration,
                              lambda t=task, n=node, tok=token: self._complete(n, t, tok),
                              priority=1)

    def _complete(self, node: SimNode, task: SimTask, token: int) -> None:
        node.counter.end_work(self.sim.now, token)
        node.free_cores += 1
        node.tasks_completed += 1
        node.work_completed += task.work
        try:
            result = task.action() if task.action is not None else None
        except BaseException as exc:  # noqa: BLE001 - forwarded to future
            task.future._set_exception(exc)
        else:
            task.future._set_value(result)
        self._dispatch(node)
