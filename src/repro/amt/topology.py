"""Topology-aware hierarchical network models with per-link contention.

The paper's Fig. 13 roll-off comes from communication on a real Skylake
cluster, where not every node pair is equidistant: SDs on the same node
share memory, nodes in the same rack talk through the top-of-rack
switch, and racks talk through (typically oversubscribed) uplinks.  The
flat :class:`repro.amt.cluster.Network` collapses all of that into one
latency + bandwidth link with per-node egress serialization, which
makes rack locality, uplink oversubscription, and placement-aware
balancing unexpressible.

This module is the pluggable replacement (DESIGN.md substitution 5).  A
:class:`Topology` routes each ``src → dst`` message onto a list of
:class:`LinkHop` entries; every traversed link charges its own latency
and wire time and — when it is a FIFO link — serializes concurrent
messages exactly like the flat model's egress link.  Messages are
attributed to a **route class** (``"remote"``, ``"intra_rack"``,
``"inter_rack"``, ``"wan"``) for the per-hop-class byte telemetry the
experiment records carry (``RunRecord.bytes_by_class``); the classes
partition the traffic, so their byte counts always sum to
``bytes_sent``.

Implementations:

* :class:`FlatTopology` — one egress link per node, bit-for-bit
  equivalent to the legacy :class:`repro.amt.cluster.Network` (same
  arithmetic, same float operation order), so existing goldens and
  committed benchmark records do not move;
* :class:`SwitchedTopology` — two-level: nodes grouped into racks,
  intra-rack messages pay only the NIC, inter-rack messages additionally
  traverse the source rack's uplink and the destination rack's downlink,
  both FIFO links whose bandwidth is oversubscribed
  (``rack_size / oversubscription`` NICs' worth shared by the rack);
* :class:`HierarchicalTopology` — intra-node (free, shared memory) /
  intra-rack / inter-rack tiers with fully differentiated per-tier
  latency and bandwidth, explicit node → rack assignment, and optional
  **WAN racks** whose up/downlinks use a third, far-slower tier (the
  ``wan_joiner`` scenario: an elastic joiner provisioned across a WAN).

Everything here is deterministic arithmetic on virtual time — no wall
clock, no randomness — so schedules stay bit-identical across runs and
machines (DESIGN.md substitution 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LinkHop", "Topology", "FlatTopology", "SwitchedTopology",
           "HierarchicalTopology", "topology_names", "DEFAULT_LATENCY",
           "DEFAULT_BANDWIDTH"]

#: The flat model's defaults (kept in sync with
#: :class:`repro.amt.cluster.Network`): ~5 us MPI latency, 10 Gb/s NIC.
DEFAULT_LATENCY = 5e-6
DEFAULT_BANDWIDTH = 1.25e9


class LinkHop:
    """One link of a route: identity, cost parameters, FIFO behavior.

    ``key`` identifies the physical link (e.g. ``("egress", 3)`` or
    ``("uplink", 1)``); messages traversing the same FIFO key serialize
    on it in arrival order.  ``fifo=False`` models a link with enough
    parallel capacity that contention is negligible.
    """

    __slots__ = ("key", "latency", "bandwidth", "fifo")

    def __init__(self, key: Tuple, latency: float, bandwidth: float,
                 fifo: bool = True) -> None:
        self.key = key
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.fifo = fifo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LinkHop {self.key} lat={self.latency:g} "
                f"bw={self.bandwidth:g}{' fifo' if self.fifo else ''}>")


def _check_link(latency: float, bandwidth: float, what: str) -> None:
    if latency < 0 or bandwidth <= 0:
        raise ValueError(
            f"{what} needs latency >= 0 and bandwidth > 0, "
            f"got latency={latency}, bandwidth={bandwidth}")


class _CompiledRoute:
    """A route lowered to slot indices and plain floats.

    The per-message hot path must not chase :class:`LinkHop` objects or
    hash tuple link keys: each hop is reduced to ``(slot, latency,
    bandwidth)`` where ``slot`` indexes the topology's flat ready-time
    array (``-1`` for non-FIFO hops), and the route's telemetry class is
    an interned integer id into the per-class byte array.
    """

    __slots__ = ("hops", "class_id")

    def __init__(self, hops: Tuple[Tuple[int, float, float], ...],
                 class_id: int) -> None:
        self.hops = hops
        self.class_id = class_id


class Topology:
    """Route + charge engine shared by every topology.

    Subclasses implement :meth:`route` (the static hop list for a node
    pair) and :meth:`route_class` (the telemetry class the message's
    bytes are attributed to); :meth:`plan_send` walks the hops,
    serializing on FIFO links and accumulating latency + wire time, and
    maintains the same counters as the legacy flat network
    (``bytes_sent``, ``messages_sent``) plus the per-route-class byte
    map ``bytes_by_class``.

    Link state is **per run**: :meth:`reset` clears both the FIFO
    backlog and the counters (the distributed solver calls it at run
    start, so a reused topology object cannot leak the previous run's
    egress backlog into the next run's first sends);
    :meth:`release_node` drops a failed node's private-link
    reservations so a later same-id bookkeeping reuse can never inherit
    a ghost backlog.
    """

    #: registry name; subclasses override
    kind = "topology"

    def __init__(self) -> None:
        #: link key -> slot into :attr:`_link_free` (append-only; slots
        #: survive stat resets so FIFO backlog semantics are unchanged)
        self._link_slot: Dict[Tuple, int] = {}
        #: absolute virtual time each FIFO link is next free, by slot
        self._link_free: List[float] = []
        #: memoized compiled routes (static: independent of link state)
        self._route_cache: Dict[Tuple[int, int], _CompiledRoute] = {}
        self.bytes_sent = 0
        self.messages_sent = 0
        #: interned route classes and their byte totals, by class id
        self._class_ids: Dict[str, int] = {}
        self._class_names: List[str] = []
        self._class_bytes: List[int] = []

    @property
    def bytes_by_class(self) -> Dict[str, int]:
        """Bytes per route class (a class appears once it carried a
        message; classes partition the traffic, so
        ``sum(bytes_by_class.values()) == bytes_sent`` always holds)."""
        return dict(zip(self._class_names, self._class_bytes))

    # -- interface ---------------------------------------------------------
    def route(self, src: int, dst: int) -> Sequence[LinkHop]:
        """The ordered links a ``src → dst`` message traverses."""
        raise NotImplementedError

    def route_class(self, src: int, dst: int) -> str:
        """Telemetry class of the route (attributed once per message)."""
        raise NotImplementedError

    def rack_of(self, node: int) -> int:
        """Rack id of ``node`` (flat topologies: everything in rack 0)."""
        return 0

    # -- engine ------------------------------------------------------------
    def plan_send(self, src: int, dst: int, nbytes: int, now: float) -> float:
        """Account a message and return its virtual delivery time.

        Same contract as the legacy ``Network.plan_send``: self-sends
        are free and uncounted (shared memory inside a node); every
        other message is charged per traversed link — FIFO links start
        no earlier than their previous message's wire time ends.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if src == dst:
            return now
        self.bytes_sent += nbytes
        self.messages_sent += 1
        route = self._route_cache.get((src, dst))
        if route is None:
            route = self._compile_route(src, dst)
        self._class_bytes[route.class_id] += nbytes
        link_free = self._link_free
        t = now
        for slot, latency, bandwidth in route.hops:
            wire = nbytes / bandwidth
            if slot >= 0:
                free = link_free[slot]
                start = free if free > t else t
                link_free[slot] = start + wire
                t = start + latency + wire
            else:
                t = t + latency + wire
        return t

    def _compile_route(self, src: int, dst: int) -> _CompiledRoute:
        hops = []
        for hop in self.route(src, dst):
            if hop.fifo:
                slot = self._link_slot.get(hop.key)
                if slot is None:
                    slot = len(self._link_free)
                    self._link_slot[hop.key] = slot
                    self._link_free.append(0.0)
            else:
                slot = -1
            hops.append((slot, hop.latency, hop.bandwidth))
        cls = self.route_class(src, dst)
        cid = self._class_ids.get(cls)
        if cid is None:
            cid = len(self._class_names)
            self._class_ids[cls] = cid
            self._class_names.append(cls)
            self._class_bytes.append(0)
        route = _CompiledRoute(tuple(hops), cid)
        self._route_cache[(src, dst)] = route
        return route

    # -- state management --------------------------------------------------
    def reset(self) -> None:
        """Clear all per-run state: FIFO backlog and byte counters."""
        self._link_free = [0.0] * len(self._link_free)
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the byte/message counters (link backlog is kept).

        Routes and class ids are recompiled lazily, so — exactly like
        the pre-slot dict accounting — a class reappears in
        :attr:`bytes_by_class` only once it carries a message again.
        """
        self.bytes_sent = 0
        self.messages_sent = 0
        self._route_cache = {}
        self._class_ids = {}
        self._class_names = []
        self._class_bytes = []

    def release_node(self, node: int) -> None:
        """Drop ``node``'s private-link reservations (node failed).

        Shared links (rack uplinks) keep their backlog — messages
        already on the wire still occupy the switch — but the dead
        node's NIC no longer exists, so its egress reservation must not
        delay a later send bookkept under the same id.
        """
        slot = self._link_slot.get(("egress", node))
        if slot is not None:
            self._link_free[slot] = 0.0


class FlatTopology(Topology):
    """Single-tier topology: every pair one egress hop — the legacy model.

    Bit-for-bit equivalent to :class:`repro.amt.cluster.Network`
    (identical arithmetic and float operation order), so running under
    the default topology reproduces all committed goldens exactly.
    """

    kind = "flat"

    def __init__(self, latency: float = DEFAULT_LATENCY,
                 bandwidth: float = DEFAULT_BANDWIDTH,
                 serialize_egress: bool = True) -> None:
        super().__init__()
        _check_link(latency, bandwidth, "flat link")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.serialize_egress = serialize_egress

    def route(self, src: int, dst: int) -> Sequence[LinkHop]:
        return (LinkHop(("egress", src), self.latency, self.bandwidth,
                        fifo=self.serialize_egress),)

    def route_class(self, src: int, dst: int) -> str:
        return "remote"


class SwitchedTopology(Topology):
    """Two-level racks with oversubscribed uplinks.

    Nodes are grouped into racks of ``rack_size`` (``rack = node //
    rack_size``, so elastic joiners land in well-defined racks too).
    Intra-rack messages pay only the sender's NIC — identical cost to
    the flat model.  Inter-rack messages additionally traverse the
    source rack's **uplink** and the destination rack's **downlink**:
    FIFO links shared by the whole rack whose bandwidth is
    ``bandwidth * rack_size / oversubscription`` (``oversubscription =
    rack_size`` gives one NIC's worth for the whole rack; larger values
    starve it further), plus a switch latency per traversed switch hop.
    """

    kind = "switched"

    def __init__(self, rack_size: int = 4,
                 latency: float = DEFAULT_LATENCY,
                 bandwidth: float = DEFAULT_BANDWIDTH,
                 oversubscription: float = 4.0,
                 uplink_latency: Optional[float] = None,
                 uplink_bandwidth: Optional[float] = None) -> None:
        super().__init__()
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {rack_size}")
        if oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be > 0, got {oversubscription}")
        _check_link(latency, bandwidth, "NIC link")
        self.rack_size = int(rack_size)
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.oversubscription = float(oversubscription)
        self.uplink_latency = (2.0 * self.latency if uplink_latency is None
                               else float(uplink_latency))
        self.uplink_bandwidth = (
            self.bandwidth * self.rack_size / self.oversubscription
            if uplink_bandwidth is None else float(uplink_bandwidth))
        _check_link(self.uplink_latency, self.uplink_bandwidth, "uplink")

    def rack_of(self, node: int) -> int:
        if node < 0:
            raise ValueError(f"node must be >= 0, got {node}")
        return node // self.rack_size

    def route(self, src: int, dst: int) -> Sequence[LinkHop]:
        nic = LinkHop(("egress", src), self.latency, self.bandwidth)
        r_src, r_dst = self.rack_of(src), self.rack_of(dst)
        if r_src == r_dst:
            return (nic,)
        return (nic,
                LinkHop(("uplink", r_src), self.uplink_latency,
                        self.uplink_bandwidth),
                LinkHop(("downlink", r_dst), self.uplink_latency,
                        self.uplink_bandwidth))

    def route_class(self, src: int, dst: int) -> str:
        return ("intra_rack" if self.rack_of(src) == self.rack_of(dst)
                else "inter_rack")


class HierarchicalTopology(Topology):
    """Intra-node / intra-rack / inter-rack tiers with WAN racks.

    The three message classes of a hierarchical cluster, each with its
    own latency and bandwidth:

    * **intra-node** — ``src == dst``: shared memory, free (the flat
      model's convention, kept so SDs co-located on a node never pay);
    * **intra-rack** — one hop over the sender's NIC at the
      ``latency`` / ``bandwidth`` tier;
    * **inter-rack** — NIC, then the source rack's uplink and the
      destination rack's downlink at the ``rack_latency`` /
      ``rack_bandwidth`` tier (both FIFO, shared per rack).

    Racks listed in ``wan_racks`` are reached over a fourth-tier WAN
    link instead: their up/downlinks use ``wan_latency`` /
    ``wan_bandwidth``, and such routes are classed ``"wan"`` — the
    ``wan_joiner`` scenario provisions an elastic joiner there.

    ``racks`` pins the initial nodes' rack ids explicitly; nodes beyond
    the list (elastic joiners) land in ``join_rack`` when given, else
    in ``node // rack_size``.
    """

    kind = "hierarchical"

    def __init__(self, rack_size: int = 4,
                 racks: Optional[Sequence[int]] = None,
                 join_rack: Optional[int] = None,
                 latency: float = DEFAULT_LATENCY,
                 bandwidth: float = DEFAULT_BANDWIDTH,
                 rack_latency: Optional[float] = None,
                 rack_bandwidth: Optional[float] = None,
                 wan_latency: float = 5e-3,
                 wan_bandwidth: float = 1.25e7,
                 wan_racks: Sequence[int] = ()) -> None:
        super().__init__()
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {rack_size}")
        _check_link(latency, bandwidth, "intra-rack link")
        self.rack_size = int(rack_size)
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.rack_latency = (4.0 * self.latency if rack_latency is None
                             else float(rack_latency))
        self.rack_bandwidth = (0.5 * self.bandwidth if rack_bandwidth is None
                               else float(rack_bandwidth))
        _check_link(self.rack_latency, self.rack_bandwidth, "inter-rack link")
        _check_link(wan_latency, wan_bandwidth, "wan link")
        self.wan_latency = float(wan_latency)
        self.wan_bandwidth = float(wan_bandwidth)
        self.wan_racks = frozenset(int(r) for r in wan_racks)
        if racks is not None:
            racks = tuple(int(r) for r in racks)
            if any(r < 0 for r in racks):
                raise ValueError("rack ids must be >= 0")
        self.racks = racks
        self.join_rack = None if join_rack is None else int(join_rack)
        if self.join_rack is not None and self.join_rack < 0:
            raise ValueError(f"join_rack must be >= 0, got {self.join_rack}")
        if self.join_rack is not None and self.racks is None:
            # without an explicit initial assignment there is no way to
            # tell joiners from initial nodes, and join_rack would
            # silently swallow the whole cluster into one rack
            raise ValueError("join_rack requires an explicit racks "
                             "assignment for the initial nodes")

    def rack_of(self, node: int) -> int:
        if node < 0:
            raise ValueError(f"node must be >= 0, got {node}")
        if self.racks is not None and node < len(self.racks):
            return self.racks[node]
        if self.join_rack is not None:
            return self.join_rack
        return node // self.rack_size

    def _switch_params(self, rack: int) -> Tuple[float, float]:
        if rack in self.wan_racks:
            return self.wan_latency, self.wan_bandwidth
        return self.rack_latency, self.rack_bandwidth

    def route(self, src: int, dst: int) -> Sequence[LinkHop]:
        nic = LinkHop(("egress", src), self.latency, self.bandwidth)
        r_src, r_dst = self.rack_of(src), self.rack_of(dst)
        if r_src == r_dst:
            return (nic,)
        up_lat, up_bw = self._switch_params(r_src)
        dn_lat, dn_bw = self._switch_params(r_dst)
        return (nic,
                LinkHop(("uplink", r_src), up_lat, up_bw),
                LinkHop(("downlink", r_dst), dn_lat, dn_bw))

    def route_class(self, src: int, dst: int) -> str:
        r_src, r_dst = self.rack_of(src), self.rack_of(dst)
        if r_src == r_dst:
            return "intra_rack"
        if r_src in self.wan_racks or r_dst in self.wan_racks:
            return "wan"
        return "inter_rack"


def topology_names() -> List[str]:
    """Registered topology kinds, in registration order."""
    return ["flat", "switched", "hierarchical"]
