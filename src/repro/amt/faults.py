"""Deterministic cluster-churn schedules and recovery telemetry.

Real AMT deployments do not run on a fixed node set: nodes crash, new
nodes are provisioned mid-run, and individual nodes straggle while a
co-located job hammers them.  This module is the *data* side of the
elastic-cluster substitution (DESIGN.md substitution 4): a
:class:`FaultSchedule` is a statically validated list of
:class:`ChurnEvent` entries — node failures, node joins, transient
straggle windows — pinned to **virtual** times, so fault injection is
exactly as deterministic as the rest of the simulated schedule
(bit-identical runs, serial or process-parallel sweeps).

The runtime halves live elsewhere: :class:`repro.amt.cluster.SimCluster`
changes its active-node set mid-simulation (``fail_node``/``add_node``),
and :class:`repro.solver.distributed.DistributedSolver` requeues the
failed node's in-flight tasks with a recovery penalty and evacuates its
SDs through the active balancing strategy.  :class:`RecoveryEvent` is
the per-fault telemetry record those layers emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = ["ChurnEvent", "FaultSchedule", "RecoveryEvent",
           "DEFAULT_RECOVERY_PENALTY"]

#: Extra work fraction charged to tasks requeued off a failed node:
#: re-fetching SD state from the checkpoint store and re-entering the
#: scheduler is not free.  0.25 means a requeued task costs 1.25x.
DEFAULT_RECOVERY_PENALTY = 0.25


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership/capacity change, in virtual time.

    Kinds
    -----
    ``fail``
        ``node`` leaves the cluster permanently at ``time``: its queued
        and in-flight tasks are orphaned (the solver requeues them with
        a recovery penalty) and its SDs must be evacuated.
    ``join``
        A new node enters at ``time`` with ``cores`` cores and a
        constant ``rate`` (0 means the solver default).  Joined node ids
        are assigned sequentially after the initial nodes; ``node`` must
        equal that assigned id so schedules are explicit about who is
        who (later events may target the joiner).
    ``straggle``
        ``node`` runs at ``factor`` times its normal rate during
        ``[time, stop)`` — a transient straggler, composed exactly into
        the node's speed trace (no sampling, schedules stay
        deterministic).
    """

    KINDS = ("fail", "join", "straggle")

    kind: str
    time: float
    node: int
    cores: int = 1
    rate: float = 0.0
    stop: float = 0.0
    factor: float = 0.25

    def __post_init__(self) -> None:
        def _set(name: str, value: Any) -> None:
            object.__setattr__(self, name, value)

        if self.kind not in self.KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}; "
                             f"expected one of {self.KINDS}")
        _set("time", float(self.time))
        _set("node", int(self.node))
        _set("cores", int(self.cores))
        _set("rate", float(self.rate))
        _set("stop", float(self.stop))
        _set("factor", float(self.factor))
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.node < 0:
            raise ValueError(f"event node must be >= 0, got {self.node}")
        if self.kind == "join":
            if self.cores < 1:
                raise ValueError(f"join cores must be >= 1, got {self.cores}")
            if self.rate < 0:
                raise ValueError(f"join rate must be >= 0, got {self.rate}")
        if self.kind == "straggle":
            if not self.stop > self.time:
                raise ValueError(
                    f"straggle window needs stop > time, got "
                    f"[{self.time}, {self.stop})")
            if not 0 < self.factor <= 1:
                raise ValueError(
                    f"straggle factor must be in (0, 1], got {self.factor}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "time": self.time, "node": self.node,
                "cores": self.cores, "rate": self.rate, "stop": self.stop,
                "factor": self.factor}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ChurnEvent":
        return cls(**d)


@dataclass(frozen=True)
class FaultSchedule:
    """A validated churn schedule bound to an initial cluster size.

    The whole schedule is known up front (fault injection, not fault
    *prediction*), so membership evolution is checked statically:

    * ``fail``/``straggle`` may only target nodes that exist — an
      initial node, or a joiner whose join time is strictly earlier;
    * a node fails at most once and is never targeted after failing;
    * join ids are sequential (``initial_nodes``, ``initial_nodes + 1``,
      …) in event-time order;
    * a node's straggle windows must not overlap (two co-located jobs
      are expressed as one window with a smaller factor);
    * at least one node remains alive at every instant.

    Events are stored sorted by ``(time, sequence-of-kind)``; two events
    at the same instant fire in the stored order, which the sort makes
    deterministic.
    """

    initial_nodes: int
    events: Tuple[ChurnEvent, ...] = ()
    recovery_penalty: float = DEFAULT_RECOVERY_PENALTY

    def __post_init__(self) -> None:
        def _set(name: str, value: Any) -> None:
            object.__setattr__(self, name, value)

        _set("initial_nodes", int(self.initial_nodes))
        if self.initial_nodes < 1:
            raise ValueError(
                f"initial_nodes must be >= 1, got {self.initial_nodes}")
        events = tuple(e if isinstance(e, ChurnEvent)
                       else ChurnEvent.from_dict(e) for e in self.events)
        # stable, fully deterministic order: time, then kind rank
        # (joins before fails before straggles at equal times — a
        # same-instant join+fail pair leaves the cluster non-empty),
        # then declaration order via the original index
        rank = {"join": 0, "fail": 1, "straggle": 2}
        events = tuple(sorted(
            events, key=lambda e: (e.time, rank[e.kind])))
        _set("events", events)
        _set("recovery_penalty", float(self.recovery_penalty))
        if self.recovery_penalty < 0:
            raise ValueError(
                f"recovery_penalty must be >= 0, got {self.recovery_penalty}")
        self._check_membership()

    # -- static membership validation -----------------------------------
    def _check_membership(self) -> None:
        known = self.initial_nodes  # ids [0, known) exist
        joined_at: Dict[int, float] = {}
        failed: set = set()
        straggle_end: Dict[int, float] = {}
        alive = self.initial_nodes
        for e in self.events:
            if e.kind == "join":
                if e.node != known:
                    raise ValueError(
                        f"join ids must be sequential: expected node "
                        f"{known}, got {e.node} at t={e.time}")
                joined_at[e.node] = e.time
                known += 1
                alive += 1
                continue
            if e.node >= known:
                raise ValueError(
                    f"{e.kind} targets node {e.node} before it exists "
                    f"(known nodes: {known}) at t={e.time}")
            if e.node in joined_at and e.time <= joined_at[e.node]:
                raise ValueError(
                    f"{e.kind} targets joiner {e.node} at t={e.time}, "
                    f"not after its join at t={joined_at[e.node]}")
            if e.node in failed:
                raise ValueError(
                    f"{e.kind} targets node {e.node} after it failed")
            if e.kind == "fail":
                failed.add(e.node)
                alive -= 1
                if alive < 1:
                    raise ValueError(
                        f"failing node {e.node} at t={e.time} would leave "
                        f"no alive nodes")
            if e.kind == "straggle":
                if e.time < straggle_end.get(e.node, 0.0):
                    raise ValueError(
                        f"straggle windows on node {e.node} overlap at "
                        f"t={e.time}; express co-located jobs as one "
                        f"window with a smaller factor")
                straggle_end[e.node] = e.stop

    # -- queries ---------------------------------------------------------
    @property
    def max_nodes(self) -> int:
        """Initial nodes plus every join: the final node-id space."""
        return self.initial_nodes + sum(
            1 for e in self.events if e.kind == "join")

    def joins(self) -> List[ChurnEvent]:
        return [e for e in self.events if e.kind == "join"]

    def fails(self) -> List[ChurnEvent]:
        return [e for e in self.events if e.kind == "fail"]

    def straggles_of(self, node: int) -> List[ChurnEvent]:
        """Straggle windows targeting ``node``, in time order."""
        return [e for e in self.events
                if e.kind == "straggle" and e.node == node]

    def to_dict(self) -> Dict[str, Any]:
        return {"initial_nodes": self.initial_nodes,
                "events": [e.to_dict() for e in self.events],
                "recovery_penalty": self.recovery_penalty}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultSchedule":
        d = dict(d)
        d["events"] = tuple(ChurnEvent.from_dict(e)
                            for e in d.get("events", ()))
        return cls(**d)


@dataclass(frozen=True)
class RecoveryEvent:
    """One fault handled by the solver, as the run telemetry records it.

    ``fail`` events carry the evacuation/requeue accounting:
    ``sds_evacuated`` SDs left the dead node, ``tasks_requeued``
    orphaned tasks were resubmitted (each at ``1 + recovery_penalty``
    times its work), and ``recovery_bytes`` of SD state were re-fetched
    from the checkpoint store on the lead surviving node.  ``join``
    events record the node entering; its first SDs arrive with the next
    balance step and are tagged on that step's
    :class:`repro.core.strategies.BalanceEvent` instead.  ``step`` is
    the timestep the event interrupted — it anchors the event against
    the per-step ownership timeline (``parts_events``).
    """

    time: float
    kind: str
    node: int
    step: int = 0
    sds_evacuated: int = 0
    tasks_requeued: int = 0
    recovery_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "node": self.node,
                "step": self.step,
                "sds_evacuated": self.sds_evacuated,
                "tasks_requeued": self.tasks_requeued,
                "recovery_bytes": self.recovery_bytes}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RecoveryEvent":
        return cls(**d)
