"""HPX-style one-shot channels, generation-indexed.

HPX applications commonly exchange ghost zones through
``hpx::lcos::channel``: the producer ``set``s a value for timestep ``k``,
the consumer ``get``s a future for that generation, and either side may
arrive first.  This module provides the same decoupling for the runtimes
here:

* :class:`Channel` — a single producer/consumer pipe indexed by an
  integer generation; ``get`` before ``set`` returns a pending future,
  ``set`` before ``get`` buffers the value.
* :class:`ChannelTable` — a keyed collection (e.g. one channel per
  (source SD, destination SD) pair), registered through AGAS so both
  ends can resolve it by name.

Each generation is single-assignment — setting a generation twice is an
error, which catches double-send bugs in exchange code.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from .agas import AddressSpace
from .future import Future

__all__ = ["Channel", "ChannelTable", "ChannelError"]


class ChannelError(RuntimeError):
    """Raised on channel protocol violations (double set/get)."""


class Channel:
    """A generation-indexed single-assignment pipe.

    Thread-safe; usable both from the real executor and the DES runtime.
    Generations are independent: out-of-order set/get across generations
    is fine, matching HPX's channel semantics.

    ``future_factory`` chooses the future type handed out by
    :meth:`get` — single-threaded DES users can pass
    :class:`repro.amt.future.LocalFuture` to skip per-future lock
    allocation on the exchange hot path.
    """

    __slots__ = ("name", "_lock", "_values", "_futures", "_consumed",
                 "_set_gens", "_future_factory")

    def __init__(self, name: str = "",
                 future_factory: Callable[[], Future] = Future) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._values: Dict[int, Any] = {}
        self._futures: Dict[int, Future] = {}
        self._consumed: set = set()
        self._set_gens: set = set()
        self._future_factory = future_factory

    def set(self, generation: int, value: Any = None) -> None:
        """Publish ``value`` for ``generation`` (exactly once)."""
        with self._lock:
            if generation in self._set_gens:
                raise ChannelError(
                    f"channel {self.name!r}: generation {generation} already set")
            self._set_gens.add(generation)
            fut = self._futures.pop(generation, None)
            if fut is None:
                self._values[generation] = value
                return
        fut._set_value(value)

    def get(self, generation: int) -> Future:
        """Future for ``generation``'s value (each generation read once)."""
        with self._lock:
            if generation in self._consumed:
                raise ChannelError(
                    f"channel {self.name!r}: generation {generation} already got")
            self._consumed.add(generation)
            if generation in self._values:
                value = self._values.pop(generation)
            else:
                fut = self._future_factory()
                self._futures[generation] = fut
                return fut
        out = self._future_factory()
        out._set_value(value)
        return out

    def pending_generations(self) -> int:
        """Generations with a waiting consumer but no value yet."""
        with self._lock:
            return len(self._futures)

    def buffered_generations(self) -> int:
        """Generations with a value but no consumer yet."""
        with self._lock:
            return len(self._values)


class ChannelTable:
    """Named channels, one per key, optionally AGAS-registered.

    Keys are arbitrary hashables (the solvers use ``(src_sd, dst_sd)``).
    Channels are created lazily on first access from either side.
    """

    PREFIX = "/channels"

    __slots__ = ("agas", "namespace", "_lock", "_channels",
                 "_future_factory")

    def __init__(self, agas: Optional[AddressSpace] = None,
                 namespace: str = "ghost",
                 future_factory: Callable[[], Future] = Future) -> None:
        self.agas = agas
        self.namespace = namespace
        self._lock = threading.Lock()
        self._channels: Dict[Hashable, Channel] = {}
        self._future_factory = future_factory

    def channel(self, key: Hashable) -> Channel:
        """The channel for ``key``, created (and registered) on demand."""
        with self._lock:
            ch = self._channels.get(key)
            if ch is None:
                name = f"{self.PREFIX}/{self.namespace}/{key!r}"
                ch = Channel(name, future_factory=self._future_factory)
                self._channels[key] = ch
                if self.agas is not None:
                    self.agas.register(name, ch)
            return ch

    def set(self, key: Hashable, generation: int, value: Any = None) -> None:
        """``channel(key).set(generation, value)``."""
        self.channel(key).set(generation, value)

    def get(self, key: Hashable, generation: int) -> Future:
        """``channel(key).get(generation)``."""
        return self.channel(key).get(generation)

    def stats(self) -> Tuple[int, int, int]:
        """``(num channels, pending gets, buffered sets)`` snapshot."""
        with self._lock:
            chans = list(self._channels.values())
        return (len(chans),
                sum(c.pending_generations() for c in chans),
                sum(c.buffered_generations() for c in chans))
