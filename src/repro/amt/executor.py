"""Thread-pool async executor — the *real* execution runtime.

This is the Python analogue of HPX's threading subsystem for a single
compute node (the paper's Sec. 8.2 "shared memory implementation").  Work
is submitted with :meth:`TaskExecutor.async_` which immediately returns a
:class:`repro.amt.future.Future`; a fixed pool of worker threads drains the
queue.  NumPy kernels release the GIL for the bulk of their work, so the
futurized shared-memory solver genuinely overlaps SD computations.

Busy time per worker is accounted so that the same
:class:`repro.amt.counters.CounterRegistry` machinery the load balancer
polls in simulation can also be polled against real executions.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, List, Optional

from .future import Future

__all__ = ["TaskExecutor"]


class _WorkItem:
    __slots__ = ("fn", "args", "kwargs", "future")

    def __init__(self, fn: Callable[..., Any], args: tuple, kwargs: dict, future: Future):
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future = future


class TaskExecutor:
    """A fixed-size thread pool with an HPX-style ``async_`` interface.

    Parameters
    ----------
    num_threads:
        Number of worker threads ("CPUs" in the paper's Figs. 9–10).
    name:
        Used to key the per-worker busy-time counters.

    Notes
    -----
    The executor tracks, per worker, the cumulative wall-clock seconds
    spent inside task bodies (``busy_time``) and exposes the aggregate via
    :meth:`busy_time`.  Combined with :meth:`elapsed` this yields the same
    busy-fraction statistic as ``hpx::performance_counters::busy_time``.
    """

    def __init__(self, num_threads: int, name: str = "executor") -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.name = name
        self.num_threads = num_threads
        self._queue: "queue.SimpleQueue[Optional[_WorkItem]]" = queue.SimpleQueue()
        self._busy = [0.0] * num_threads
        self._busy_lock = threading.Lock()
        self._shutdown = False
        self._t0 = time.perf_counter()
        self._threads: List[threading.Thread] = []
        for i in range(num_threads):
            t = threading.Thread(target=self._worker, args=(i,), daemon=True,
                                 name=f"{name}-worker-{i}")
            t.start()
            self._threads.append(t)

    # -- submission -----------------------------------------------------
    def async_(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; return its future immediately."""
        if self._shutdown:
            raise RuntimeError("executor has been shut down")
        fut = Future()
        self._queue.put(_WorkItem(fn, args, kwargs, fut))
        return fut

    def map_async(self, fn: Callable[..., Any], items: List[Any]) -> List[Future]:
        """Submit ``fn(item)`` for every item; return the list of futures."""
        return [self.async_(fn, item) for item in items]

    def submit_wave(self, fn: Callable[..., Any], items: List[Any]) -> List[Future]:
        """Run ``fn(item)`` for a homogeneous batch as *one* queued item.

        The executor analogue of the simulator's task-wave batching: a
        run of small homogeneous tasks pays one queue round-trip and one
        worker wake-up instead of ``len(items)``.  The items execute
        sequentially on a single worker (in order, each future resolving
        as its item finishes), so use this for batches whose per-item
        cost is too small to amortize queue overhead — not for work that
        should spread across workers.
        """
        if self._shutdown:
            raise RuntimeError("executor has been shut down")
        futures = [Future() for _ in items]

        def run_wave() -> None:
            for item, fut in zip(items, futures):
                try:
                    result = fn(item)
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    fut._set_exception(exc)
                else:
                    fut._set_value(result)

        self._queue.put(_WorkItem(run_wave, (), {}, Future()))
        return futures

    # -- accounting -----------------------------------------------------
    def busy_time(self) -> float:
        """Total seconds all workers spent executing task bodies."""
        with self._busy_lock:
            return sum(self._busy)

    def busy_time_per_worker(self) -> List[float]:
        """Per-worker busy seconds (copy)."""
        with self._busy_lock:
            return list(self._busy)

    def elapsed(self) -> float:
        """Wall-clock seconds since construction or the last reset."""
        return time.perf_counter() - self._t0

    def reset_counters(self) -> None:
        """Zero busy times and restart the elapsed clock.

        Matches the paper's Algorithm 1 line 35
        (``reset_all(busy_time)``) performed after each balancing step.
        """
        with self._busy_lock:
            for i in range(len(self._busy)):
                self._busy[i] = 0.0
        self._t0 = time.perf_counter()

    # -- lifecycle --------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for t in self._threads:
                t.join()

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # -- worker loop ------------------------------------------------------
    def _worker(self, index: int) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            start = time.perf_counter()
            try:
                result = item.fn(*item.args, **item.kwargs)
            except BaseException as exc:  # noqa: BLE001 - forwarded to future
                item.future._set_exception(exc)
            else:
                item.future._set_value(result)
            finally:
                dt = time.perf_counter() - start
                with self._busy_lock:
                    self._busy[index] += dt
