"""HPX-like asynchronous many-task substrate.

Two runtimes share one futures API (:mod:`repro.amt.future`):

* :class:`repro.amt.executor.TaskExecutor` — a real thread pool used by
  the shared-memory solver (paper Sec. 8.2);
* :class:`repro.amt.cluster.SimCluster` — a discrete-event simulated
  cluster used by the distributed solver (paper Sec. 8.3), where numerics
  are real but time is virtual (see DESIGN.md substitution 1).

AGAS (:mod:`repro.amt.agas`) and performance counters
(:mod:`repro.amt.counters`) mirror the HPX components in the paper's
Fig. 3 that the load balancer depends on.
"""

from .agas import AddressSpace, AgasError
from .autoscale import (AUTOSCALE_PRIORITY, AutoscaleController,
                        AutoscaleObservation, AutoscalePolicy,
                        TargetUtilizationPolicy, node_seconds)
from .channel import Channel, ChannelError, ChannelTable
from .counters import BUSY_TIME, BusyTimeCounter, Counter, CounterRegistry
from .des import Event, SimulationError, Simulator
from .executor import TaskExecutor
from .future import (Future, FutureError, LocalFuture, Promise, dataflow,
                     local_when_all, make_exceptional_future,
                     make_ready_future, when_all)
from .cluster import (ConstantSpeed, Network, PiecewiseSpeed, RampSpeed,
                      SimCluster,
                      SimNode, SimTask, SpeedTrace, StraggleSpeed)
from .faults import (DEFAULT_RECOVERY_PENALTY, ChurnEvent, FaultSchedule,
                     RecoveryEvent)
from .topology import (FlatTopology, HierarchicalTopology, LinkHop,
                       SwitchedTopology, Topology, topology_names)

__all__ = [
    "AddressSpace", "AgasError",
    "AUTOSCALE_PRIORITY", "AutoscaleController", "AutoscaleObservation",
    "AutoscalePolicy", "TargetUtilizationPolicy", "node_seconds",
    "Channel", "ChannelError", "ChannelTable",
    "BUSY_TIME", "BusyTimeCounter", "Counter", "CounterRegistry",
    "Event", "SimulationError", "Simulator",
    "TaskExecutor",
    "Future", "FutureError", "LocalFuture", "Promise", "dataflow",
    "local_when_all", "make_exceptional_future", "make_ready_future",
    "when_all",
    "ConstantSpeed", "Network", "PiecewiseSpeed", "RampSpeed", "SimCluster",
    "SimNode", "SimTask", "SpeedTrace", "StraggleSpeed",
    "ChurnEvent", "FaultSchedule", "RecoveryEvent",
    "DEFAULT_RECOVERY_PENALTY",
    "Topology", "FlatTopology", "SwitchedTopology", "HierarchicalTopology",
    "LinkHop", "topology_names",
]
