"""Active Global Address Space (AGAS) — a symbolic name registry.

HPX registers performance counters and distributed objects in AGAS so any
locality can resolve them by name (paper Sec. 5, Fig. 3).  Our cluster is
in-process, so AGAS reduces to a hierarchical name -> object registry with
the same resolution semantics: globally unique symbolic paths such as
``/counters/node3/busy_time`` or ``/objects/sd/17``.

The registry supports prefix queries (used by ``reset_all`` over all
busy-time counters) and enforces single registration per name, which has
caught real bookkeeping bugs in the load-balancer tests.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Tuple

__all__ = ["AddressSpace", "AgasError"]


class AgasError(KeyError):
    """Raised for unknown names or duplicate registrations."""


class AddressSpace:
    """Thread-safe symbolic-name registry.

    Names are ``/``-separated paths.  They are stored flat (no directory
    objects); hierarchy exists only through prefix queries, which matches
    how HPX's counter names behave.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Any] = {}

    @staticmethod
    def _normalize(name: str) -> str:
        if not name or not name.startswith("/"):
            raise AgasError(f"AGAS names must start with '/': {name!r}")
        # collapse duplicate separators, strip trailing slash
        parts = [p for p in name.split("/") if p]
        if not parts:
            raise AgasError("empty AGAS name")
        return "/" + "/".join(parts)

    def register(self, name: str, obj: Any) -> None:
        """Bind ``obj`` to ``name``; duplicate names are an error."""
        key = self._normalize(name)
        with self._lock:
            if key in self._entries:
                raise AgasError(f"name already registered: {key}")
            self._entries[key] = obj

    def unregister(self, name: str) -> Any:
        """Remove and return the object bound to ``name``."""
        key = self._normalize(name)
        with self._lock:
            try:
                return self._entries.pop(key)
            except KeyError:
                raise AgasError(f"unknown name: {key}") from None

    def resolve(self, name: str) -> Any:
        """Return the object bound to ``name``."""
        key = self._normalize(name)
        with self._lock:
            try:
                return self._entries[key]
            except KeyError:
                raise AgasError(f"unknown name: {key}") from None

    def contains(self, name: str) -> bool:
        """Whether ``name`` is currently bound."""
        try:
            key = self._normalize(name)
        except AgasError:
            return False
        with self._lock:
            return key in self._entries

    def query(self, prefix: str) -> List[Tuple[str, Any]]:
        """Return sorted ``(name, object)`` pairs under ``prefix``.

        ``prefix`` matches whole path components: querying ``/counters``
        returns ``/counters/node0/busy_time`` but not ``/countersX``.
        """
        key = self._normalize(prefix)
        needle = key + "/"
        with self._lock:
            hits = [(n, o) for n, o in self._entries.items()
                    if n == key or n.startswith(needle)]
        return sorted(hits)

    def names(self) -> List[str]:
        """All registered names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())
