"""Futures and promises modelled on HPX's local control objects (LCOs).

The paper (Sec. 5) relies on ``hpx::async``/``hpx::future`` for wait-free
asynchronous execution and futurization-based synchronization.  This module
provides the Python analogue used by every runtime in :mod:`repro.amt`:

* :class:`Promise` — the write side: exactly one call to
  :meth:`Promise.set_value` or :meth:`Promise.set_exception`.
* :class:`Future` — the read side: :meth:`Future.get` blocks until a value
  (or raises the stored exception), :meth:`Future.then` attaches
  continuations, and the module-level combinators :func:`when_all` /
  :func:`dataflow` mirror ``hpx::when_all`` / ``hpx::dataflow``.

Futures here are thread-safe so the same objects work both under the real
thread-pool executor (:mod:`repro.amt.executor`) and under the
single-threaded discrete-event simulator (:mod:`repro.amt.des`), where the
"blocking" get is only ever called once the simulator has quiesced.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, List, Optional, Sequence

__all__ = [
    "Future",
    "LocalFuture",
    "Promise",
    "make_ready_future",
    "make_exceptional_future",
    "when_all",
    "local_when_all",
    "dataflow",
    "FutureError",
]


class FutureError(RuntimeError):
    """Raised on invalid future/promise protocol usage.

    Examples: resolving a promise twice, or retrieving a future that can
    never become ready (no promise attached).
    """


_PENDING = "pending"
_READY = "ready"
_EXCEPTIONAL = "exceptional"

#: Barrier-group sentinel: a :class:`LocalFuture` observed by more than
#: one subscriber (or by anything other than a single
#: :func:`local_when_all` barrier).  Wave batching may only delay such a
#: future's resolution if it is the *final* member of the wave.
_MULTI = object()

#: The :func:`local_when_all` output future currently subscribing to its
#: inputs, or ``None`` outside a barrier subscription loop.  Lets
#: :meth:`LocalFuture._add_callback` stamp each input with the barrier
#: observing it, so the simulated cluster can tell which ready-queue runs
#: share one barrier (safe to batch) from futures with ad-hoc observers
#: (must resolve at their true completion time).
_active_group: Optional["LocalFuture"] = None


class Future:
    """A single-assignment container for a value produced asynchronously.

    Mirrors the ``hpx::future`` semantics the paper's Listing 1 shows:
    ``async`` returns a future immediately; ``get`` synchronizes.

    Instances are created either by a :class:`Promise`, by
    :func:`make_ready_future`, or by the runtimes' ``async_`` entry points.
    """

    __slots__ = ("_cond", "_state", "_value", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._state = _PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    # -- inspection ----------------------------------------------------
    def is_ready(self) -> bool:
        """Return ``True`` once a value or exception has been stored."""
        with self._cond:
            return self._state != _PENDING

    def has_exception(self) -> bool:
        """Return ``True`` if the future completed with an exception."""
        with self._cond:
            return self._state == _EXCEPTIONAL

    # -- synchronization ------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Any:
        """Block until ready and return the value (or raise the exception).

        Parameters
        ----------
        timeout:
            Maximum seconds to wait; ``None`` waits forever.  A timeout
            raises :class:`FutureError` rather than returning ``None`` so
            that callers cannot confuse "no value yet" with a real value.
        """
        with self._cond:
            if not self._cond.wait_for(lambda: self._state != _PENDING, timeout):
                raise FutureError("future.get() timed out")
            if self._state == _EXCEPTIONAL:
                assert self._exception is not None
                raise self._exception
            return self._value

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the future is ready without consuming the value."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._state != _PENDING, timeout):
                raise FutureError("future.wait() timed out")

    # -- continuations ---------------------------------------------------
    def then(self, fn: Callable[["Future"], Any]) -> "Future":
        """Attach a continuation; returns a future for ``fn(self)``.

        The continuation runs synchronously on the thread that fulfils the
        promise (or immediately if already ready), matching HPX's default
        ``launch::sync`` continuation policy for lightweight work.
        """
        out = type(self)()

        def runner(done: "Future") -> None:
            try:
                out._set_value(fn(done))
            except BaseException as exc:  # noqa: BLE001 - forwarded to future
                out._set_exception(exc)

        self._add_callback(runner)
        return out

    def _add_callback(self, cb: Callable[["Future"], None]) -> None:
        run_now = False
        with self._cond:
            if self._state == _PENDING:
                self._callbacks.append(cb)
            else:
                run_now = True
        if run_now:
            cb(self)

    def _resolve_none(self) -> None:
        """``_set_value(None)`` as a bound zero-arg callback.

        Simulation hot paths (message deliveries) schedule this method
        directly as the event action instead of allocating a lambda per
        message.
        """
        self._set_value(None)

    # -- fulfilment (used by Promise and runtimes) -------------------------
    def _set_value(self, value: Any) -> None:
        with self._cond:
            if self._state != _PENDING:
                raise FutureError("future already resolved")
            self._value = value
            self._state = _READY
            callbacks = self._callbacks
            self._callbacks = []
            self._cond.notify_all()
        for cb in callbacks:
            cb(self)

    def _set_exception(self, exc: BaseException) -> None:
        with self._cond:
            if self._state != _PENDING:
                raise FutureError("future already resolved")
            self._exception = exc
            self._state = _EXCEPTIONAL
            callbacks = self._callbacks
            self._callbacks = []
            self._cond.notify_all()
        for cb in callbacks:
            cb(self)


class LocalFuture(Future):
    """Lock-free :class:`Future` for single-threaded runtimes.

    The simulated cluster (:mod:`repro.amt.cluster`) resolves up to
    millions of futures per run, all from the one thread driving the DES;
    the per-instance ``threading.Condition`` of :class:`Future` is pure
    allocation and locking overhead there.  Semantics are identical except
    that ``get``/``wait`` never block: a pending ``LocalFuture`` raises
    :class:`FutureError` immediately, because no other thread could ever
    resolve it — callers drain the simulator first.

    Two extra slots support the cluster's barrier-aware wave batching
    (see DESIGN.md, "Service fast path"):

    * ``_group`` — ``None`` until observed; then either the single
      :func:`local_when_all` barrier subscribed to this future, or the
      :data:`_MULTI` sentinel once any other observer appears.
    * ``_wave`` — set by the cluster while this future sits *inside* a
      formed wave whose end it does not terminate; called (zero-arg) the
      moment a new subscriber attaches, which materializes the wave back
      into per-event form so the subscriber sees the true completion
      time.
    """

    __slots__ = ("_group", "_wave")

    def __init__(self) -> None:
        self._cond = None
        self._state = _PENDING
        self._value = None
        self._exception = None
        self._callbacks = []
        self._group = None
        self._wave = None

    # -- inspection ----------------------------------------------------
    def is_ready(self) -> bool:
        return self._state != _PENDING

    def has_exception(self) -> bool:
        return self._state == _EXCEPTIONAL

    # -- synchronization ------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Any:
        if self._state == _PENDING:
            raise FutureError(
                "LocalFuture is not ready; single-threaded futures cannot "
                "block (run the simulator first)")
        if self._state == _EXCEPTIONAL:
            assert self._exception is not None
            raise self._exception
        return self._value

    def wait(self, timeout: Optional[float] = None) -> None:
        if self._state == _PENDING:
            raise FutureError(
                "LocalFuture is not ready; single-threaded futures cannot "
                "block (run the simulator first)")

    # -- continuations / fulfilment ---------------------------------------
    def _add_callback(self, cb: Callable[[Future], None]) -> None:
        global _active_group
        if self._state == _PENDING:
            self._callbacks.append(cb)
            g = _active_group
            if g is None:
                self._group = _MULTI
            elif self._group is None:
                self._group = g
            elif self._group is not g:
                self._group = _MULTI
            wave = self._wave
            if wave is not None:
                # Materializing may resolve futures whose callbacks
                # attach further subscriptions; those must not inherit
                # this barrier's group tag.
                prev, _active_group = _active_group, None
                try:
                    wave()
                finally:
                    _active_group = prev
        else:
            cb(self)

    def _set_value(self, value: Any) -> None:
        if self._state != _PENDING:
            raise FutureError("future already resolved")
        self._value = value
        self._state = _READY
        callbacks = self._callbacks
        self._callbacks = []
        for cb in callbacks:
            cb(self)

    def _set_exception(self, exc: BaseException) -> None:
        if self._state != _PENDING:
            raise FutureError("future already resolved")
        self._exception = exc
        self._state = _EXCEPTIONAL
        callbacks = self._callbacks
        self._callbacks = []
        for cb in callbacks:
            cb(self)


class Promise:
    """The producer side of a :class:`Future` (HPX ``hpx::promise``)."""

    __slots__ = ("_future",)

    def __init__(self) -> None:
        self._future = Future()

    def get_future(self) -> Future:
        """Return the (single, shared) future associated with this promise."""
        return self._future

    def set_value(self, value: Any = None) -> None:
        """Fulfil the promise with ``value``; may be called exactly once."""
        self._future._set_value(value)

    def set_exception(self, exc: BaseException) -> None:
        """Fail the promise with ``exc``; may be called exactly once."""
        self._future._set_exception(exc)


def make_ready_future(value: Any = None) -> Future:
    """Return a future that is already fulfilled with ``value``."""
    fut = Future()
    fut._set_value(value)
    return fut


def make_exceptional_future(exc: BaseException) -> Future:
    """Return a future that is already failed with ``exc``."""
    fut = Future()
    fut._set_exception(exc)
    return fut


def when_all(futures: Iterable[Future]) -> Future:
    """Return a future that becomes ready when all inputs are ready.

    The result value is the list of input futures (as with
    ``hpx::when_all``); exceptions are *not* propagated here — callers
    inspect the individual futures, which keeps error handling explicit.
    """
    futs: Sequence[Future] = list(futures)
    out = Future()
    if not futs:
        out._set_value([])
        return out

    remaining = [len(futs)]
    lock = threading.Lock()

    def one_done(_f: Future) -> None:
        with lock:
            remaining[0] -= 1
            fire = remaining[0] == 0
        if fire:
            out._set_value(list(futs))

    for f in futs:
        f._add_callback(one_done)
    return out


def local_when_all(futures: Iterable[Future]) -> Future:
    """Lock-free :func:`when_all` for single-threaded runtimes.

    Same contract as :func:`when_all` but counts completions without a
    lock and returns a :class:`LocalFuture`.  Only safe when every input
    future is resolved from one thread (the DES hot path).
    """
    global _active_group
    futs: Sequence[Future] = list(futures)
    out = LocalFuture()
    if not futs:
        out._set_value([])
        return out

    state = [len(futs)]

    def one_done(_f: Future) -> None:
        state[0] -= 1
        if state[0] == 0:
            out._set_value(list(futs))

    # Tag each input with the barrier observing it (see LocalFuture
    # ``_group``) so wave batching knows these subscriptions all fire
    # together when the run's last member completes.  Save/restore: a
    # subscription may materialize a wave whose callbacks build further
    # barriers reentrantly.
    prev = _active_group
    _active_group = out
    try:
        for f in futs:
            f._add_callback(one_done)
    finally:
        _active_group = prev
    return out


def dataflow(fn: Callable[..., Any], *futures: Future) -> Future:
    """Run ``fn`` once every input future is ready (HPX ``hpx::dataflow``).

    ``fn`` receives the *values* of the input futures.  If any input
    carries an exception, the output future carries the first such
    exception instead of running ``fn`` — this is how the solvers chain
    per-SD timestep tasks without explicit synchronization barriers.
    """
    out = Future()

    def fire(_ignored: Future) -> None:
        try:
            values = [f.get(timeout=0.0) if not f.is_ready() else f.get() for f in futures]
        except BaseException as exc:  # noqa: BLE001 - forwarded to future
            out._set_exception(exc)
            return
        try:
            out._set_value(fn(*values))
        except BaseException as exc:  # noqa: BLE001 - forwarded to future
            out._set_exception(exc)

    when_all(futures)._add_callback(fire)
    return out
