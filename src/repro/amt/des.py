"""Discrete-event simulation core used to model the distributed cluster.

The paper evaluates its solver on a real HPX/MPI cluster.  Offline, in pure
Python, wall-clock scaling numbers would reflect interpreter overheads
rather than the schedule the paper studies, so the distributed runtime
accounts *virtual time* through this simulator while the numerics run for
real (see DESIGN.md, substitution 1).

The simulator is a classic event-queue design:

* :class:`Event` — (time, priority, seq, action) tuples ordered by time;
  ``seq`` breaks ties deterministically in insertion order.
* :class:`Simulator` — owns the event queue and the virtual clock.  Actions
  are plain callables that may schedule further events.

Determinism is a design requirement (tests assert bit-identical virtual
schedules across runs), hence the explicit tie-breaking and the absence of
any wall-clock coupling.

Two queue backends sit behind the same API (see DESIGN.md, "DES fast
path"):

* ``heap`` — a single binary heap of ``(time, priority, seq, event)``
  tuples.  Tuple keys keep comparisons in C; ``seq`` is unique so the
  event object itself is never compared.
* ``bucket`` — a calendar queue: events are hashed by ``floor(time/width)``
  into per-bucket heaps and buckets are drained in index order.  Bucket
  indices are monotone in time and equal-time ties share a bucket, so the
  pop order is *identical* to the heap backend (a hypothesis suite pins
  this).

Selection: ``Simulator(queue=...)`` or ``REPRO_DES_QUEUE`` (``heap``,
``bucket``, or the default ``auto`` which starts on the heap and promotes
to the calendar queue once the queue grows past a few thousand live
events).  Both backends compact lazily: cancelled events are dropped in
bulk once they outnumber live ones instead of lingering forever.

Opt-in profiling (``REPRO_DES_PROFILE=1`` or ``Simulator(profile=True)``)
accumulates per-event-class wall-time counters; schedulers tag events via
``schedule(..., klass="delivery")``.
"""

from __future__ import annotations

import heapq
import itertools
import os
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Event", "Simulator", "SimulationError", "requested_queue"]

_QUEUE_KINDS = ("heap", "bucket", "auto")


def requested_queue() -> str:
    """The validated ``REPRO_DES_QUEUE`` selection.

    Raises :class:`ValueError` on a typo so the CLI can fail fast with
    a one-line error instead of a traceback mid-run (mirrors
    ``requested_backend`` / ``requested_strategy``).
    """
    queue = os.environ.get("REPRO_DES_QUEUE", "auto")
    if queue not in _QUEUE_KINDS:
        raise ValueError(
            f"REPRO_DES_QUEUE={queue!r} is not a DES queue backend "
            f"(choose from {', '.join(_QUEUE_KINDS)})")
    return queue


class SimulationError(RuntimeError):
    """Raised on invalid simulator usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled action in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the action fires.
    priority:
        Secondary ordering key; lower fires first at equal times.  The
        cluster uses this to drain message *deliveries* before task
        *completions* at identical timestamps, which keeps ghost data
        visibly arriving before dependent tasks are reconsidered.
    cancelled:
        Cancelled events stay queued but are skipped when popped.
    klass:
        Optional profiling label (e.g. ``"delivery"``); only consulted
        when the simulator runs with profiling enabled.
    """

    __slots__ = ("time", "priority", "seq", "action", "cancelled", "klass",
                 "_queue")

    def __init__(self, time: float, priority: int, seq: int,
                 action: Callable[[], None],
                 klass: Optional[str] = None) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False
        self.klass = klass
        self._queue: Optional[Any] = None

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue.note_cancel()

    def _key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} prio={self.priority}{flag}>"


#: Queue entries are plain tuples so ordering stays in C.  ``seq`` is
#: unique, so the trailing :class:`Event` is never compared.
_Entry = Tuple[float, int, int, Event]

#: Lazy compaction threshold: compact once cancelled entries both exceed
#: this count and outnumber live ones.
_COMPACT_MIN = 512

#: ``auto`` promotes heap -> bucket once this many events are live.
_AUTO_PROMOTE = 4096

#: The calendar queue stages events in a plain heap until it has seen this
#: many, then picks a bucket width from the observed time span.
_SIZING_COUNT = 64


class _HeapQueue:
    """Seed-style binary heap, with tuple keys and lazy compaction."""

    kind = "heap"

    __slots__ = ("_heap", "live", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self.live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: _Entry) -> None:
        entry[3]._queue = self
        heapq.heappush(self._heap, entry)
        self.live += 1

    def note_cancel(self) -> None:
        self.live -= 1
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN and self._cancelled > self.live:
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries in bulk and re-heapify."""
        self._heap = [e for e in self._heap if not e[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def peek(self) -> Optional[_Entry]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
            else:
                return entry
        return None

    def pop_front(self) -> _Entry:
        """Pop the entry just returned by :meth:`peek`."""
        entry = heapq.heappop(self._heap)
        entry[3]._queue = None
        self.live -= 1
        return entry

    def drain_live(self) -> List[_Entry]:
        """Remove and return all live entries (used for backend migration)."""
        out = [e for e in self._heap if not e[3].cancelled]
        self._heap = []
        self._cancelled = 0
        self.live = 0
        return out


class _BucketQueue:
    """Calendar queue: per-bucket heaps drained in bucket-index order.

    Bucket index is ``floor(time / width)``; the index is monotone in
    time and equal times share a bucket, so draining buckets in order and
    each bucket by the full ``(time, priority, seq)`` key reproduces the
    heap's pop order bit for bit.  The width adapts: events stage in a
    plain heap until ``_SIZING_COUNT`` arrive, then the observed span
    picks a width; the table is rebuilt (and re-sized) when the
    population quadruples.
    """

    kind = "bucket"

    __slots__ = ("_width", "_inv_width", "_buckets", "_idx_heap", "_idx_set",
                 "_staging", "live", "_cancelled", "_size", "_resize_at")

    def __init__(self) -> None:
        self._width: Optional[float] = None
        self._inv_width = 0.0
        self._buckets: Dict[int, List[_Entry]] = {}
        self._idx_heap: List[int] = []
        self._idx_set: set = set()
        self._staging: List[_Entry] = []
        self.live = 0
        self._cancelled = 0
        self._size = 0
        self._resize_at = 4 * _SIZING_COUNT

    def __len__(self) -> int:
        return self._size

    def push(self, entry: _Entry) -> None:
        entry[3]._queue = self
        self.live += 1
        self._size += 1
        if self._width is None:
            heapq.heappush(self._staging, entry)
            if self._size >= _SIZING_COUNT:
                self._adopt_width()
            return
        self._insert(entry)
        if self._size > self._resize_at:
            self._rebuild()

    def _insert(self, entry: _Entry) -> None:
        # Virtual time is never negative, so int() floors.
        idx = int(entry[0] * self._inv_width)
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = bucket = []
        heapq.heappush(bucket, entry)
        if idx not in self._idx_set:
            self._idx_set.add(idx)
            heapq.heappush(self._idx_heap, idx)

    def _adopt_width(self) -> None:
        entries = self._staging
        self._staging = []
        self._set_width(entries)
        for entry in entries:
            if entry[3].cancelled:
                self._cancelled -= 1
                self._size -= 1
            else:
                self._insert(entry)

    def _set_width(self, entries: List[_Entry]) -> None:
        live = [e for e in entries if not e[3].cancelled]
        if live:
            times = [e[0] for e in live]
            span = max(times) - min(times)
            # Aim for ~2 live events per bucket at sizing time.
            width = span / max(1.0, len(live) / 2.0)
        else:
            width = 0.0
        self._width = width if width > 0.0 else 1.0
        self._inv_width = 1.0 / self._width

    def _all_entries(self) -> List[_Entry]:
        out = list(self._staging)
        for bucket in self._buckets.values():
            out.extend(bucket)
        return out

    def _rebuild(self, resize: bool = True) -> None:
        entries = [e for e in self._all_entries() if not e[3].cancelled]
        self._buckets = {}
        self._idx_heap = []
        self._idx_set = set()
        self._staging = []
        self._size = len(entries)
        self._cancelled = 0
        if resize:
            self._set_width(entries)
        for entry in entries:
            self._insert(entry)
        self._resize_at = max(4 * _SIZING_COUNT, 4 * self._size)

    def note_cancel(self) -> None:
        self.live -= 1
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN and self._cancelled > self.live:
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries in bulk (keeps the current width)."""
        self._rebuild(resize=False)

    def peek(self) -> Optional[_Entry]:
        staging = self._staging
        while staging:
            entry = staging[0]
            if entry[3].cancelled:
                heapq.heappop(staging)
                self._cancelled -= 1
                self._size -= 1
            else:
                return entry
        idx_heap = self._idx_heap
        while idx_heap:
            idx = idx_heap[0]
            bucket = self._buckets.get(idx)
            while bucket:
                entry = bucket[0]
                if entry[3].cancelled:
                    heapq.heappop(bucket)
                    self._cancelled -= 1
                    self._size -= 1
                else:
                    return entry
            heapq.heappop(idx_heap)
            self._idx_set.discard(idx)
            if bucket is not None:
                del self._buckets[idx]
        return None

    def pop_front(self) -> _Entry:
        """Pop the entry just returned by :meth:`peek`."""
        if self._staging:
            entry = heapq.heappop(self._staging)
        else:
            entry = heapq.heappop(self._buckets[self._idx_heap[0]])
        entry[3]._queue = None
        self.live -= 1
        self._size -= 1
        return entry


def _make_queue(kind: str):
    return _BucketQueue() if kind == "bucket" else _HeapQueue()


class Simulator:
    """Deterministic event-driven virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
        assert sim.now == 1.5

    Parameters
    ----------
    queue:
        Event-queue backend: ``"heap"``, ``"bucket"``, or ``"auto"``
        (heap that promotes itself to the calendar queue at scale).
        Defaults to ``REPRO_DES_QUEUE``, then ``"auto"``.  All backends
        pop events in the identical ``(time, priority, seq)`` order.
    profile:
        Accumulate per-event-class wall-time counters in
        :attr:`profile`.  Defaults to ``REPRO_DES_PROFILE``.
    """

    def __init__(self, queue: Optional[str] = None,
                 profile: Optional[bool] = None) -> None:
        if queue is None:
            queue = os.environ.get("REPRO_DES_QUEUE", "auto")
        if queue not in _QUEUE_KINDS:
            raise SimulationError(
                f"unknown DES queue backend {queue!r} "
                "(expected 'heap', 'bucket' or 'auto')")
        self.queue_kind = queue
        self._auto = queue == "auto"
        self._queue = _make_queue("heap" if queue == "auto" else queue)
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._run_until: Optional[float] = None
        self._processed = 0
        if profile is None:
            profile = os.environ.get("REPRO_DES_PROFILE", "") not in ("", "0")
        #: ``{event class: [count, seconds]}`` when profiling, else ``None``.
        self.profile: Optional[Dict[str, List[Any]]] = {} if profile else None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._processed

    @property
    def run_until(self) -> Optional[float]:
        """The ``until`` boundary of the active :meth:`run`, else ``None``.

        Batching layers that consume *future* work inside one event (the
        service arrival pump's drain-ahead) must not reach past this
        cut: an observer reading state when ``run(until=t)`` returns
        would otherwise see effects from beyond ``t``.
        """
        return self._run_until

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if none queued.

        Lets batching layers (the service arrival pump) check whether any
        event could fire before a candidate time without popping anything.
        """
        entry = self._queue.peek()
        return entry[0] if entry is not None else None

    # -- scheduling --------------------------------------------------------
    def schedule(self, time: float, action: Callable[[], None],
                 priority: int = 0, klass: Optional[str] = None) -> Event:
        """Schedule ``action`` at absolute virtual ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past: virtual
        time only moves forward, which is what makes busy-time accounting
        consistent.  ``klass`` tags the event for the opt-in profiler.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        ev = Event(float(time), priority, next(self._seq), action, klass)
        self._queue.push((ev.time, ev.priority, ev.seq, ev))
        if (self._auto and self._queue.kind == "heap"
                and self._queue.live > _AUTO_PROMOTE):
            self._promote()
        return ev

    def schedule_after(self, delay: float, action: Callable[[], None],
                       priority: int = 0, klass: Optional[str] = None) -> Event:
        """Schedule ``action`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action, priority, klass)

    def _promote(self) -> None:
        """Migrate ``auto`` mode from the heap to the calendar queue."""
        entries = self._queue.drain_live()
        self._queue = _BucketQueue()
        for entry in entries:
            self._queue.push(entry)

    # -- execution -----------------------------------------------------------
    def _execute(self, ev: Event) -> None:
        profile = self.profile
        if profile is None:
            ev.action()
            return
        t0 = perf_counter()
        ev.action()
        dt = perf_counter() - t0
        cell = profile.get(ev.klass or "event")
        if cell is None:
            profile[ev.klass or "event"] = cell = [0, 0.0]
        cell[0] += 1
        cell[1] += dt

    def step(self) -> bool:
        """Execute the next pending event; return ``False`` if none remain."""
        entry = self._queue.peek()
        if entry is None:
            return False
        self._queue.pop_front()
        ev = entry[3]
        self._now = ev.time
        self._processed += 1
        self._execute(ev)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue; return the final virtual time.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the triggering event
            is left in the queue; an event *exactly at* ``until`` still
            fires).  The clock always lands exactly on ``until`` when it
            lies ahead of ``now`` — including when the queue drains
            early, so back-to-back ``run(until=...)`` windows tile
            virtual time without gaps.  The clock never moves backwards:
            ``until`` in the past of ``now`` leaves the clock where it
            is.
        max_events:
            Safety valve against runaway schedules; raises
            :class:`SimulationError` *before* the offending event is
            popped or counted, so the queue and ``events_processed``
            stay consistent.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._run_until = until
        executed = 0
        try:
            while True:
                queue = self._queue  # auto mode may swap backends mid-run
                entry = queue.peek()
                if entry is None:
                    # drained before reaching ``until``: the clock still
                    # advances to the requested time, exactly as it does
                    # when a later event exists beyond the boundary —
                    # otherwise back-to-back ``run(until=...)`` windows
                    # (the service layer's polling loop) would measure
                    # short windows against a stale ``now``
                    if until is not None and until > self._now:
                        self._now = until
                    break
                ev = entry[3]
                if until is not None and ev.time > until:
                    if until > self._now:
                        self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                queue.pop_front()
                self._now = ev.time
                self._processed += 1
                executed += 1
                self._execute(ev)
        finally:
            self._running = False
            self._run_until = None
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._queue.live

    # -- profiling ---------------------------------------------------------
    def profile_report(self) -> str:
        """Human-readable per-event-class timing table (profiling mode)."""
        if self.profile is None:
            return "DES profiling disabled (set REPRO_DES_PROFILE=1)"
        lines = [f"{'class':<14} {'count':>10} {'seconds':>10}"]
        total_n = 0
        total_s = 0.0
        for klass in sorted(self.profile):
            count, secs = self.profile[klass]
            total_n += count
            total_s += secs
            lines.append(f"{klass:<14} {count:>10} {secs:>10.4f}")
        lines.append(f"{'total':<14} {total_n:>10} {total_s:>10.4f}")
        return "\n".join(lines)
