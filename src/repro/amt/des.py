"""Discrete-event simulation core used to model the distributed cluster.

The paper evaluates its solver on a real HPX/MPI cluster.  Offline, in pure
Python, wall-clock scaling numbers would reflect interpreter overheads
rather than the schedule the paper studies, so the distributed runtime
accounts *virtual time* through this simulator while the numerics run for
real (see DESIGN.md, substitution 1).

The simulator is a classic event-queue design:

* :class:`Event` — (time, priority, seq, action) tuples ordered by time;
  ``seq`` breaks ties deterministically in insertion order.
* :class:`Simulator` — owns the event heap and the virtual clock.  Actions
  are plain callables that may schedule further events.

Determinism is a design requirement (tests assert bit-identical virtual
schedules across runs), hence the explicit tie-breaking and the absence of
any wall-clock coupling.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid simulator usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled action in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the action fires.
    priority:
        Secondary ordering key; lower fires first at equal times.  The
        cluster uses this to drain message *deliveries* before task
        *completions* at identical timestamps, which keeps ghost data
        visibly arriving before dependent tasks are reconsidered.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "action", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 action: Callable[[], None]) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True

    def _key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} prio={self.priority}{flag}>"


class Simulator:
    """Deterministic event-driven virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
        assert sim.now == 1.5
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._processed

    # -- scheduling --------------------------------------------------------
    def schedule(self, time: float, action: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``action`` at absolute virtual ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past: virtual
        time only moves forward, which is what makes busy-time accounting
        consistent.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        ev = Event(float(time), priority, next(self._seq), action)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay: float, action: Callable[[], None],
                       priority: int = 0) -> Event:
        """Schedule ``action`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action, priority)

    # -- execution -----------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; return ``False`` if none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._processed += 1
            ev.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue; return the final virtual time.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the triggering event
            is left in the queue).
        max_events:
            Safety valve against runaway schedules; raises
            :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = ev.time
                self._processed += 1
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                ev.action()
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)
