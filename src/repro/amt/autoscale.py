"""Closed-loop autoscaling over the elastic-cluster machinery.

The churn primitives (:meth:`SimCluster.add_node` /
:meth:`~SimCluster.fail_node`, DESIGN.md substitution 4) replay
*scripted* membership changes; this module closes the loop: an
:class:`AutoscaleController` polls the cluster at a fixed virtual-time
interval, reduces what it sees into an :class:`AutoscaleObservation`,
and asks a pluggable :class:`AutoscalePolicy` whether to grow or drain
the fleet (DESIGN.md substitution 6).

The controller owns every actuation invariant so they hold for *any*
policy, however buggy: the fleet never drops below ``min_nodes`` nor
grows past ``max_nodes`` (joins in flight count against the cap),
consecutive actions are separated by ``cooldown``, scale-out lands
after a ``provision_delay`` and ramps through a warm-up window
(:class:`StraggleSpeed` over the cluster's ``default_rate``), and
scale-in *drains* — the chosen node leaves the dispatchable set
immediately but is only retired (via :meth:`SimCluster.fail_node`)
once it has gone completely idle, so no in-flight work is ever lost to
a policy decision.

Everything here is virtual-time pure: polls are ordinary DES events,
so seeded runs are bit-identical across repeats, and a policy that
never fires leaves the simulated schedule untouched except for the
poll events themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .cluster import ConstantSpeed, SimCluster, SimulationError, StraggleSpeed

__all__ = ["AUTOSCALE_PRIORITY", "AutoscaleObservation", "AutoscalePolicy",
           "TargetUtilizationPolicy", "AutoscaleController", "node_seconds"]

#: DES priority for controller events (polls and deferred joins): after
#: same-instant deliveries (0), completions (1) and arrivals (2), so a
#: poll at time t observes everything that happened *through* t — the
#: controller reacts to a completed instant, never races it.
AUTOSCALE_PRIORITY = 3


@dataclass(frozen=True)
class AutoscaleObservation:
    """One poll's view of the world — all a policy gets to see.

    ``utilization`` is the dispatchable fleet's busy core-seconds over
    available core-seconds since the previous poll; the service-level
    signals (``p99_wait``, ``shed_rate``, ``queue_depth``) come from
    the controller's ``metrics`` callback and are zero when none is
    wired.  Fleet counts let a policy reason about headroom without
    touching the cluster: ``nodes`` is the dispatchable count (live
    minus draining), ``pending_joins`` the scale-outs requested but not
    yet landed.
    """

    time: float          #: virtual time of this poll
    interval: float      #: seconds since the previous poll
    nodes: int           #: dispatchable nodes (alive, not draining)
    pending_joins: int   #: scale-outs requested, not yet joined
    draining: int        #: nodes draining toward retirement
    utilization: float   #: busy/available core-seconds over ``interval``
    p99_wait: float      #: p99 queue wait of jobs started this interval
    shed_rate: float     #: jobs shed per second this interval
    queue_depth: int     #: jobs queued (admitted, not started) now
    min_nodes: int       #: controller floor (policy may not see below)
    max_nodes: int       #: controller ceiling


class AutoscalePolicy:
    """Protocol: observe → decide.

    ``decide`` returns ``+1`` to request one more node, ``-1`` to drain
    one, ``0`` to hold.  The controller clamps whatever comes back to
    the ``[min_nodes, max_nodes]`` band and its cooldown, so a policy
    only expresses *desire*, never actuates.  Policies may keep state
    (hysteresis counters); they must not touch wall clocks or global
    RNGs, or seeded runs stop being reproducible.
    """

    def decide(self, obs: AutoscaleObservation) -> int:  # pragma: no cover
        raise NotImplementedError


class TargetUtilizationPolicy(AutoscalePolicy):
    """Threshold policy with hysteresis — the reference implementation.

    A poll is *hot* when sustained pressure shows on any signal:
    utilization at/above ``scale_out_utilization``, p99 wait above
    ``max_p99_wait``, shed rate above ``max_shed_rate``, or queue depth
    above ``max_queue_depth``.  It is *cold* only when utilization sits
    at/below ``scale_in_utilization`` with an empty queue and no other
    signal breaching.  ``breach_polls`` consecutive hot polls request a
    scale-out; ``low_polls`` consecutive cold polls request a scale-in;
    anything mixed resets both streaks, and an emitted request restarts
    its streak from zero — so one noisy interval never flaps the fleet.

    The defaults never scale on the service signals (``inf``
    thresholds); callers opt in per signal.  A policy built with
    ``scale_out_utilization=math.inf`` and ``scale_in_utilization``
    negative can never fire at all — the no-op policy the equivalence
    tests pin against a run with autoscaling disabled.
    """

    def __init__(self, scale_out_utilization: float = 0.85,
                 scale_in_utilization: float = 0.25,
                 max_p99_wait: float = math.inf,
                 max_shed_rate: float = math.inf,
                 max_queue_depth: float = math.inf,
                 breach_polls: int = 2, low_polls: int = 4) -> None:
        if scale_in_utilization >= scale_out_utilization:
            raise ValueError(
                f"scale_in_utilization ({scale_in_utilization}) must be "
                f"below scale_out_utilization ({scale_out_utilization})")
        if breach_polls < 1 or low_polls < 1:
            raise ValueError("breach_polls and low_polls must be >= 1")
        self.scale_out_utilization = scale_out_utilization
        self.scale_in_utilization = scale_in_utilization
        self.max_p99_wait = max_p99_wait
        self.max_shed_rate = max_shed_rate
        self.max_queue_depth = max_queue_depth
        self.breach_polls = breach_polls
        self.low_polls = low_polls
        self._hot_streak = 0
        self._cold_streak = 0

    def decide(self, obs: AutoscaleObservation) -> int:
        hot = (obs.utilization >= self.scale_out_utilization
               or obs.p99_wait > self.max_p99_wait
               or obs.shed_rate > self.max_shed_rate
               or obs.queue_depth > self.max_queue_depth)
        cold = (not hot and obs.queue_depth == 0
                and obs.utilization <= self.scale_in_utilization)
        if hot:
            self._hot_streak += 1
            self._cold_streak = 0
        elif cold:
            self._cold_streak += 1
            self._hot_streak = 0
        else:
            self._hot_streak = 0
            self._cold_streak = 0
        if self._hot_streak >= self.breach_polls:
            self._hot_streak = 0
            return 1
        if self._cold_streak >= self.low_polls:
            self._cold_streak = 0
            return -1
        return 0


class AutoscaleController:
    """Polls the cluster, consults a policy, drives the churn machinery.

    ``metrics`` (optional) is called once per poll as
    ``metrics(now, interval)`` and returns service-level signals
    (``p99_wait`` / ``shed_rate`` / ``queue_depth``) for the
    observation — how the service manager feeds telemetry in without
    this module importing the service layer.  ``on_membership_change``
    is called with the new dispatchable id list whenever it changes
    (drain start, join, and — for completeness — retirement), which is
    where the manager rebuilds its dispatch templates.

    Every decision and transition lands in :attr:`events` as a plain
    dict (``scale_out`` request, ``join``, ``drain``, ``retire``),
    JSON-ready for ``RunRecord.scale_events``.
    """

    def __init__(self, cluster: SimCluster, policy: AutoscalePolicy, *,
                 poll_interval: float, min_nodes: int, max_nodes: int,
                 cooldown: float = 0.0, provision_delay: float = 0.0,
                 warmup: float = 0.0, warmup_factor: float = 1.0,
                 cores_per_node: int = 1,
                 metrics: Optional[
                     Callable[[float, float], Dict[str, float]]] = None,
                 on_membership_change: Optional[
                     Callable[[List[int]], None]] = None) -> None:
        if poll_interval <= 0:
            raise SimulationError(
                f"poll_interval must be > 0, got {poll_interval}")
        if not 1 <= min_nodes <= max_nodes:
            raise SimulationError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"[{min_nodes}, {max_nodes}]")
        if cooldown < 0 or provision_delay < 0 or warmup < 0:
            raise SimulationError(
                "cooldown, provision_delay and warmup must be >= 0")
        if not 0 < warmup_factor <= 1:
            raise SimulationError(
                f"warmup_factor must be in (0, 1], got {warmup_factor}")
        live = len(cluster.active_node_ids())
        if live < min_nodes:
            raise SimulationError(
                f"cluster starts with {live} nodes, below min_nodes="
                f"{min_nodes}")
        self.cluster = cluster
        self.policy = policy
        self.poll_interval = poll_interval
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.cooldown = cooldown
        self.provision_delay = provision_delay
        self.warmup = warmup
        self.warmup_factor = warmup_factor
        self.cores_per_node = cores_per_node
        self._metrics = metrics
        self._on_membership_change = on_membership_change
        #: decision/transition log, in virtual-time order
        self.events: List[Dict[str, Any]] = []
        self._draining: List[int] = []
        self._pending_joins = 0
        self._busy_seen: Dict[int, float] = {}
        self._last_deltas: Dict[int, float] = {}
        self._last_poll = cluster.sim.now
        self._last_action = -math.inf
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Schedule the first poll one interval from now."""
        if self._started:
            raise SimulationError("controller already started")
        self._started = True
        self._last_poll = self.cluster.sim.now
        self.cluster.sim.schedule(
            self.cluster.sim.now + self.poll_interval, self._poll,
            priority=AUTOSCALE_PRIORITY, klass="autoscale")

    def dispatchable(self) -> List[int]:
        """Live node ids minus those draining, ascending — the set new
        work may target."""
        draining = self._draining
        return [nid for nid in self.cluster.active_node_ids()
                if nid not in draining]

    # -- the poll loop -----------------------------------------------------
    def _poll(self) -> None:
        sim = self.cluster.sim
        now = sim.now
        self._retire_idle(now)
        obs = self._observe(now)
        decision = self.policy.decide(obs)
        if decision > 0 and now - self._last_action >= self.cooldown:
            if obs.nodes + self._pending_joins + len(self._draining) \
                    < self.max_nodes:
                self._pending_joins += 1
                self._last_action = now
                self._record(now, "scale_out", None, obs)
                sim.schedule(now + self.provision_delay, self._join,
                             priority=AUTOSCALE_PRIORITY, klass="autoscale")
        elif decision < 0 and now - self._last_action >= self.cooldown:
            if obs.nodes > self.min_nodes and not self._pending_joins:
                nid = self._idlest()
                if nid is not None:
                    self._draining.append(nid)
                    self._last_action = now
                    self._record(now, "drain", nid, obs)
                    self._membership_changed()
        sim.schedule(now + self.poll_interval, self._poll,
                     priority=AUTOSCALE_PRIORITY, klass="autoscale")

    def _observe(self, now: float) -> AutoscaleObservation:
        ids = self.dispatchable()
        dt = now - self._last_poll
        self._last_poll = now
        busy = 0.0
        cores = 0
        deltas: Dict[int, float] = {}
        seen = self._busy_seen
        for nid in ids:
            b = self.cluster.busy_time(nid)
            d = b - seen.get(nid, 0.0)
            seen[nid] = b
            deltas[nid] = d
            busy += d
            cores += self.cluster.nodes[nid].cores
        self._last_deltas = deltas
        util = busy / (dt * cores) if dt > 0 and cores else 0.0
        extra = self._metrics(now, dt) if self._metrics is not None else {}
        return AutoscaleObservation(
            time=now, interval=dt, nodes=len(ids),
            pending_joins=self._pending_joins,
            draining=len(self._draining), utilization=util,
            p99_wait=float(extra.get("p99_wait", 0.0)),
            shed_rate=float(extra.get("shed_rate", 0.0)),
            queue_depth=int(extra.get("queue_depth", 0)),
            min_nodes=self.min_nodes, max_nodes=self.max_nodes)

    def _idlest(self) -> Optional[int]:
        """Dispatchable node with the smallest busy delta last interval
        (ties → lowest id) — the cheapest node to take out of rotation."""
        ids = self.dispatchable()
        if not ids:
            return None
        deltas = self._last_deltas
        return min(ids, key=lambda nid: (deltas.get(nid, 0.0), nid))

    # -- actuation ---------------------------------------------------------
    def _join(self) -> None:
        now = self.cluster.sim.now
        self._pending_joins -= 1
        rate = self.cluster.default_rate
        if self.warmup > 0 and self.warmup_factor < 1.0:
            trace = StraggleSpeed(
                ConstantSpeed(rate),
                [(now, now + self.warmup, self.warmup_factor)])
        else:
            trace = ConstantSpeed(rate)
        nid = self.cluster.add_node(cores=self.cores_per_node, trace=trace)
        self._busy_seen[nid] = 0.0
        self._record(now, "join", nid, None)
        self._membership_changed()

    def _retire_idle(self, now: float) -> None:
        for nid in list(self._draining):
            # flush any completed group prefix so "idle" is exact
            self.cluster.busy_time(nid)
            node = self.cluster.nodes[nid]
            if (node.running or node.ready or node.pending
                    or node.wave is not None):
                continue
            self._draining.remove(nid)
            orphans = self.cluster.fail_node(nid)
            if orphans:  # idle by the check above; belt and braces
                targets = self.dispatchable()
                for k, task in enumerate(orphans):
                    self.cluster.resubmit(task, targets[k % len(targets)])
            self._record(now, "retire", nid, None,
                         tasks_requeued=len(orphans))
            self._membership_changed()

    # -- bookkeeping -------------------------------------------------------
    def _membership_changed(self) -> None:
        if self._on_membership_change is not None:
            self._on_membership_change(self.dispatchable())

    def _record(self, t: float, action: str, node: Optional[int],
                obs: Optional[AutoscaleObservation], **extra: Any) -> None:
        row: Dict[str, Any] = {"t": t, "action": action, "node": node,
                               "nodes": len(self.dispatchable())}
        if obs is not None:
            row["utilization"] = obs.utilization
            row["p99_wait"] = obs.p99_wait
            row["shed_rate"] = obs.shed_rate
            row["queue_depth"] = obs.queue_depth
        row.update(extra)
        self.events.append(row)


def node_seconds(scale_events: List[Dict[str, Any]], initial_nodes: int,
                 horizon: float) -> float:
    """Provisioned node-seconds over a run — the autoscaler's cost axis.

    Billing follows cloud convention: a node is paid for from the
    ``scale_out`` *request* (you rent the instance while it boots, and
    a request still in provisioning at the horizon was still paid for),
    through to its ``retire`` event or the horizon.  Draining nodes
    bill until retired — they are still rented while finishing work.
    Static fleets (empty event list) cost ``initial_nodes * horizon``.
    """
    total = initial_nodes * horizon
    for e in scale_events:
        if e["action"] == "scale_out":
            total += horizon - e["t"]
        elif e["action"] == "retire":
            total -= horizon - e["t"]
    return total
